package machine_test

import (
	"math"
	"reflect"
	"testing"

	"pckpt/internal/faultinject"
	"pckpt/internal/machine"
	"pckpt/internal/policy"
	"pckpt/internal/rng"
	"pckpt/internal/stepsim"
)

// conserving installs the conservation probe on arb: at every repricing
// the total allocation is non-negative and never exceeds the
// instantaneous ceiling — the property every fault transition
// (brownout, blackout, drain outage, crash) must preserve.
func conserving(t *testing.T, arb *machine.BandwidthArbiter) {
	t.Helper()
	arb.SetAllocObserver(func(at, total, ceil float64) {
		if total > ceil*(1+1e-9)+1e-12 {
			t.Fatalf("allocation %g exceeds ceiling %g at t=%g", total, ceil, at)
		}
		if total < 0 {
			t.Fatalf("negative allocation %g at t=%g", total, at)
		}
	})
}

// A blackout (ceiling zero) freezes every flow with exact progress
// accounting — no division by a zero share, no negative rate — and the
// flow resumes from precisely where it stopped when the ceiling lifts.
func TestArbiterBlackoutFreezesProgress(t *testing.T) {
	eng := stepsim.NewEngine()
	arb := machine.NewBandwidthArbiter(eng, 1000, 4, 1)
	conserving(t, arb)
	doneAt := -1.0
	arb.StartFlow(0, stepsim.ClassCollective, 100, 10, func() { doneAt = eng.Now() })
	eng.At(4, func() { arb.SetCeiling(0) })
	eng.At(7, func() { arb.SetCeiling(1000) })
	eng.RunAll()
	// 4s of transfer, 3s blacked out, 6s remaining: done at 13.
	if !near(doneAt, 13) {
		t.Fatalf("flow finished at %g, want 13 (blackout froze 3s)", doneAt)
	}
	if got := arb.StarvationSeconds(0); !near(got, 3) {
		t.Fatalf("StarvationSeconds = %g, want 3 (the blackout window)", got)
	}
	if got := arb.MaxStarvationStretchSeconds(0); !near(got, 3) {
		t.Fatalf("MaxStarvationStretchSeconds = %g, want 3", got)
	}
}

// A shrinking (but non-zero) ceiling reprices every in-flight flow to
// its new share mid-stream, preserving integrated volume.
func TestArbiterShrinkingCeilingReprices(t *testing.T) {
	eng := stepsim.NewEngine()
	arb := machine.NewBandwidthArbiter(eng, 100, 4, 2)
	conserving(t, arb)
	var at [2]float64
	for i := 0; i < 2; i++ {
		i := i
		arb.StartFlow(i, stepsim.ClassCollective, 1000, 10, func() { at[i] = eng.Now() })
	}
	eng.At(10, func() { arb.SetCeiling(50) })
	eng.RunAll()
	// Fair share 50 each for 10s (500GB moved), then 25 each for the
	// remaining 500GB: done at 30.
	for i, got := range at {
		if !near(got, 30) {
			t.Fatalf("flow %d finished at %g, want 30", i, got)
		}
	}
	if arb.Ceiling() != 50 {
		t.Fatalf("Ceiling() = %g, want 50", arb.Ceiling())
	}
}

// A negative or NaN ceiling is a programming error, not a fault state.
func TestArbiterSetCeilingRejectsInvalid(t *testing.T) {
	for name, bad := range map[string]float64{"negative": -1, "nan": math.NaN()} {
		t.Run(name, func(t *testing.T) {
			eng := stepsim.NewEngine()
			arb := machine.NewBandwidthArbiter(eng, 100, 4, 1)
			defer func() {
				if recover() == nil {
					t.Fatal("SetCeiling accepted an invalid ceiling")
				}
			}()
			arb.SetCeiling(bad)
		})
	}
}

// A drain-slot outage evicts in-flight drains and requeues them at the
// FRONT of the slot queue in start order: when slots return, the
// interrupted drains resume FIFO ahead of drains that never started.
func TestArbiterDrainOutageRequeuesFIFO(t *testing.T) {
	eng := stepsim.NewEngine()
	arb := machine.NewBandwidthArbiter(eng, 1000, 2, 3)
	conserving(t, arb)
	var at [3]float64
	for i := 0; i < 3; i++ {
		i := i
		arb.StartFlow(i, stepsim.ClassDrain, 100, 10, func() { at[i] = eng.Now() })
	}
	if got := arb.QueuedDrains(); got != 1 {
		t.Fatalf("QueuedDrains = %d, want 1 before the outage", got)
	}
	eng.At(5, func() {
		arb.SetMaxDrains(0)
		if got := arb.QueuedDrains(); got != 3 {
			t.Fatalf("QueuedDrains = %d mid-outage, want 3 (both in-flight drains evicted)", got)
		}
	})
	eng.At(8, func() { arb.SetMaxDrains(1) })
	eng.RunAll()
	// Drains 0 and 1 each moved 50GB before the outage. With one slot
	// back at t=8, drain 0 resumes first (50GB: done 13), then drain 1
	// (50GB: done 18), then the never-started drain 2 (100GB: done 28).
	want := [3]float64{13, 18, 28}
	for i := range at {
		if !near(at[i], want[i]) {
			t.Fatalf("drain %d finished at %g, want %g (FIFO resume order)", i, at[i], want[i])
		}
	}
	if arb.MaxDrains() != 1 {
		t.Fatalf("MaxDrains() = %d, want 1", arb.MaxDrains())
	}
}

// The starvation watchdog escalates a flow starved past the bound into
// the priority lane: the stretch never exceeds the bound (the escalated
// lane is water-filled first, so the flow holds a positive rate from
// the moment the watchdog fires while any ceiling remains).
func TestArbiterStarvationWatchdogEscalates(t *testing.T) {
	eng := stepsim.NewEngine()
	arb := machine.NewBandwidthArbiter(eng, 100, 4, 2)
	conserving(t, arb)
	arb.SetStarvationEscalation(20)
	var vulnAt, collAt float64
	// The vulnerable flow soaks the whole ceiling for 100s; the
	// collective flow starves behind it.
	arb.StartFlow(0, stepsim.ClassVulnerable, 10000, 100, func() { vulnAt = eng.Now() })
	arb.StartFlow(1, stepsim.ClassCollective, 100, 10, func() { collAt = eng.Now() })
	eng.RunAll()
	// At t=20 the watchdog fires: the collective flow escalates and is
	// served first at its solo rate 10; the vulnerable flow drops to 90
	// until the escalated flow departs at 30, then takes the full 100:
	// 10000 = 20·100 + 10·90 + x·100 → x = 71, done at 101.
	if !near(collAt, 30) {
		t.Fatalf("starved flow finished at %g, want 30 (escalated at the 20s bound)", collAt)
	}
	if !near(vulnAt, 101) {
		t.Fatalf("vulnerable flow finished at %g, want 101", vulnAt)
	}
	if got := arb.Escalations(1); got != 1 {
		t.Fatalf("Escalations(1) = %d, want 1", got)
	}
	if got := arb.EscalationCount(); got != 1 {
		t.Fatalf("EscalationCount() = %d, want 1", got)
	}
	if got := arb.MaxStarvationStretchSeconds(1); got > 20+1e-9 || !near(got, 20) {
		t.Fatalf("MaxStarvationStretchSeconds(1) = %g, want 20 (the watchdog bound)", got)
	}
}

// Property test: under randomized interleavings of suspend, resume,
// cancel, brownout/blackout ceiling moves, and drain-budget changes,
// conservation holds at every repricing and every surviving flow still
// completes once the machine heals.
func TestArbiterFaultInterleavingConservation(t *testing.T) {
	src := rng.New(0xfa417)
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		eng := stepsim.NewEngine()
		const ceiling = 50.0
		arb := machine.NewBandwidthArbiter(eng, ceiling, 2, 4)
		conserving(t, arb)
		arb.SetStarvationEscalation(40)

		classes := []stepsim.WriteClass{stepsim.ClassCollective, stepsim.ClassVulnerable, stepsim.ClassDrain}
		n := 4 + src.Intn(8)
		completed := make([]bool, n)
		cancelled := make([]bool, n)
		ids := make([]stepsim.FlowID, n)
		for i := 0; i < n; i++ {
			i := i
			ids[i] = arb.StartFlow(i%4, classes[src.Intn(3)],
				src.Uniform(20, 300), src.Uniform(5, 40),
				func() { completed[i] = true })
		}
		// Random fault transitions over the first 500s; the machine heals
		// at t=1000 so every surviving flow can drain.
		events := 6 + src.Intn(10)
		for e := 0; e < events; e++ {
			at := src.Uniform(1, 500)
			switch src.Intn(5) {
			case 0: // brownout or blackout
				f := src.Uniform(0, 1)
				if src.Bool(0.3) {
					f = 0
				}
				eng.At(at, func() { arb.SetCeiling(ceiling * f) })
			case 1: // drain-slot outage / restore
				slots := src.Intn(3)
				eng.At(at, func() { arb.SetMaxDrains(slots) })
			case 2: // suspend, with a guaranteed later resume
				i := src.Intn(n)
				eng.At(at, func() { arb.SuspendFlow(ids[i]) })
				eng.At(at+src.Uniform(1, 200), func() { arb.ResumeFlow(ids[i]) })
			case 3: // tenant-crash style cancellation
				i := src.Intn(n)
				eng.At(at, func() {
					if !completed[i] {
						cancelled[i] = true
						arb.CancelFlow(ids[i])
					}
				})
			case 4: // spurious resume of a never-suspended flow (no-op)
				i := src.Intn(n)
				eng.At(at, func() { arb.ResumeFlow(ids[i]) })
			}
		}
		eng.At(1000, func() {
			arb.SetCeiling(ceiling)
			arb.SetMaxDrains(2)
		})
		eng.RunAll()
		eng.Release()
		for i := 0; i < n; i++ {
			if cancelled[i] && completed[i] {
				// A cancel raced a completion within the same trial only if
				// the flow finished first, in which case cancelled is never
				// set (the closure checks). Anything else is a double-fire.
				t.Fatalf("trial %d: flow %d both cancelled and completed", trial, i)
			}
			if !cancelled[i] && !completed[i] {
				t.Fatalf("trial %d: flow %d neither cancelled nor completed after the machine healed", trial, i)
			}
		}
		for app := 0; app < 4; app++ {
			if s := arb.StarvationSeconds(app); s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("trial %d: StarvationSeconds(%d) = %g", trial, app, s)
			}
			if s := arb.MaxStarvationStretchSeconds(app); s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("trial %d: MaxStarvationStretchSeconds(%d) = %g", trial, app, s)
			}
		}
	}
}

// crashPlan is a machine-fault plan aggressive enough that rack crashes
// reliably strike the test cohort.
func crashPlan() faultinject.MachineConfig {
	return faultinject.MachineConfig{
		CrashRatePerHour:    20,
		CrashMaxRetries:     1,
		CrashBackoffSeconds: 100,
	}
}

// The crash lifecycle emits a well-formed decision log under both
// admission policies: admit precedes crash, every crash is followed by
// exactly one requeue (at crash time + the doubling backoff) or a
// same-instant give-up, a requeued job is readmitted, and the per-job
// outcome (crash count, truncation marker) matches the log.
func TestMachineCrashRequeueReadmitOrdering(t *testing.T) {
	for name, adm := range map[string]machine.AdmissionPolicy{
		"fifo":         machine.FIFO{},
		"smallest-fit": machine.SmallestFit{},
	} {
		t.Run(name, func(t *testing.T) {
			jobs := []machine.JobSpec{testJob(policy.M1, 0), testJob(policy.P2, 0), testJob(policy.B, 600)}
			for i := range jobs {
				// Unbounded spares: the only truncation path left is the
				// crash give-up, so the marker pins the crash lifecycle.
				jobs[i].Platform.SpareNodes = 0
			}
			cfg := machine.Config{
				Jobs:      jobs,
				Faults:    crashPlan(),
				Admission: adm,
			}
			res := machine.Simulate(cfg, 42)
			if res.TenantCrashes == 0 {
				t.Fatal("a 20 crashes/hour plan never struck the cohort — fault substream drift?")
			}
			last := make(map[int]string)
			crashes := make(map[int]int)
			crashAt := make(map[int]float64)
			for _, d := range res.Decisions {
				switch d.Kind {
				case machine.DecisionAdmit:
					if prev, seen := last[d.Job]; seen && prev != machine.DecisionRequeue {
						t.Fatalf("job %d admitted after %q, want only first or after requeue", d.Job, prev)
					}
				case machine.DecisionCrash:
					if last[d.Job] != machine.DecisionAdmit {
						t.Fatalf("job %d crashed after %q, want admit (only running tenants crash)", d.Job, last[d.Job])
					}
					crashes[d.Job]++
					crashAt[d.Job] = d.AtSeconds
				case machine.DecisionRequeue:
					if last[d.Job] != machine.DecisionCrash {
						t.Fatalf("job %d requeued after %q, want crash", d.Job, last[d.Job])
					}
					backoff := cfg.Faults.CrashBackoffSeconds * float64(uint(1)<<uint(crashes[d.Job]-1))
					if want := crashAt[d.Job] + backoff; !near(d.AtSeconds, want) {
						t.Fatalf("job %d requeued at %g after crash %d, want %g (crash + %g backoff)",
							d.Job, d.AtSeconds, crashes[d.Job], want, backoff)
					}
				case machine.DecisionGiveUp:
					if last[d.Job] != machine.DecisionCrash || !near(d.AtSeconds, crashAt[d.Job]) {
						t.Fatalf("job %d gave up after %q at %g, want at its crash instant %g",
							d.Job, last[d.Job], d.AtSeconds, crashAt[d.Job])
					}
				default:
					t.Fatalf("unknown decision kind %q", d.Kind)
				}
				last[d.Job] = d.Kind
			}
			totalRequeues := 0
			for i, jr := range res.Jobs {
				if crashes[i] != jr.Crashes {
					t.Fatalf("job %d: %d crash decisions, JobResult.Crashes = %d", i, crashes[i], jr.Crashes)
				}
				if jr.Crashes > cfg.Faults.CrashMaxRetries+1 {
					t.Fatalf("job %d crashed %d times, bound is retries+1 = %d",
						i, jr.Crashes, cfg.Faults.CrashMaxRetries+1)
				}
				totalRequeues += jr.Crashes
				if jr.Run.Truncated {
					totalRequeues-- // the final crash gave up instead of requeueing
					if last[i] != machine.DecisionGiveUp {
						t.Fatalf("job %d truncated but its last decision is %q, want give-up", i, last[i])
					}
				} else if last[i] != machine.DecisionAdmit {
					t.Fatalf("job %d completed but its last decision is %q, want admit", i, last[i])
				}
			}
			if res.CrashRequeues != totalRequeues {
				t.Fatalf("CrashRequeues = %d, want %d (crashes minus give-ups)", res.CrashRequeues, totalRequeues)
			}
		})
	}
}

// Retry exhaustion yields the truncated-run marker: a job crashing past
// CrashMaxRetries readmissions leaves the machine as a partial run with
// no further requeue.
func TestMachineCrashRetryExhaustionTruncates(t *testing.T) {
	jobs := []machine.JobSpec{testJob(policy.M1, 0), testJob(policy.P2, 0)}
	for i := range jobs {
		jobs[i].Platform.SpareNodes = 0 // crash give-up is the only truncation path
	}
	cfg := machine.Config{
		Jobs: jobs,
		Faults: faultinject.MachineConfig{
			CrashRatePerHour:    30,
			CrashBackoffSeconds: 100,
		},
	}
	// A zero CrashMaxRetries means "default" (the -inject-retries
	// convention): the effective bound is DefaultCrashMaxRetries, so the
	// third crash of a job gives up.
	retries := cfg.Faults.WithDefaults().CrashMaxRetries
	res := machine.Simulate(cfg, 7)
	if res.TenantCrashes == 0 {
		t.Fatal("a 30 crashes/hour plan never struck")
	}
	truncated := 0
	for i, jr := range res.Jobs {
		if jr.Crashes > retries+1 {
			t.Fatalf("job %d crashed %d times past the retry bound %d", i, jr.Crashes, retries)
		}
		if jr.Run.Truncated {
			truncated++
			if jr.Crashes != retries+1 {
				t.Fatalf("job %d truncated after %d crashes, want %d (retries exhausted)", i, jr.Crashes, retries+1)
			}
			if jr.EndSeconds <= 0 {
				t.Fatalf("job %d truncated without an end time", i)
			}
		}
	}
	if truncated == 0 {
		t.Fatal("a 30 crashes/hour plan never exhausted any job's retry budget")
	}
	if want := res.TenantCrashes - truncated; res.CrashRequeues != want {
		t.Fatalf("CrashRequeues = %d, want %d (crashes minus give-ups)", res.CrashRequeues, want)
	}
}

// Conservation holds through every brownout repricing: the allocation
// never exceeds the instantaneous (possibly zero) ceiling, and the peak
// never exceeds the healthy ceiling.
func TestMachineBrownoutConservation(t *testing.T) {
	const ceiling = 3.0
	jobs := []machine.JobSpec{testJob(policy.M1, 0), testJob(policy.M1, 0), testJob(policy.P2, 0)}
	for i := range jobs {
		jobs[i].Platform.SpareNodes = 0
	}
	cfg := machine.Config{
		Jobs:          jobs,
		PFSCeilingGBs: ceiling,
		Faults: faultinject.MachineConfig{
			BrownoutRatePerHour: 6,
			BrownoutMeanSeconds: 300,
			BlackoutProb:        0.3,
		},
		OnAlloc: func(at, total, ceil float64) {
			if total > ceil*(1+1e-9)+1e-12 {
				t.Fatalf("allocation %g exceeds instantaneous ceiling %g at t=%g", total, ceil, at)
			}
		},
	}
	res := machine.Simulate(cfg, 11)
	if res.Brownouts == 0 || res.BrownoutSeconds <= 0 {
		t.Fatalf("no brownout window opened (Brownouts=%d, BrownoutSeconds=%g)", res.Brownouts, res.BrownoutSeconds)
	}
	if res.PeakAllocGBs > ceiling*(1+1e-9) {
		t.Fatalf("peak allocation %g exceeds healthy ceiling %g", res.PeakAllocGBs, ceiling)
	}
}

// Blackout windows starve every in-flight transfer; the watchdog fires
// on stretches past its bound (delivering bandwidth the instant any
// ceiling returns — the positive-ceiling bound itself is pinned by
// TestArbiterStarvationWatchdogEscalates), and stays silent when
// disarmed.
func TestMachineWatchdogEscalatesUnderBlackout(t *testing.T) {
	jobs := []machine.JobSpec{testJob(policy.M1, 0), testJob(policy.M1, 0), testJob(policy.P2, 0)}
	for i := range jobs {
		jobs[i].Platform.SpareNodes = 0
	}
	cfg := machine.Config{
		Jobs:          jobs,
		PFSCeilingGBs: 3,
		Faults: faultinject.MachineConfig{
			BrownoutRatePerHour: 4,
			BrownoutMeanSeconds: 1200,
			BlackoutProb:        1, // every window a blackout: guaranteed starvation
		},
	}
	base := machine.Simulate(cfg, 11)
	if base.Escalations != 0 {
		t.Fatalf("disarmed watchdog escalated %d times", base.Escalations)
	}
	worst := 0.0
	for _, jr := range base.Jobs {
		worst = math.Max(worst, jr.MaxStarvationStretchSeconds)
	}
	const bound = 300.0
	if worst <= bound {
		t.Fatalf("longest blackout stretch %gs never exceeds the %gs bound — the armed run below would prove nothing", worst, bound)
	}
	cfg.Faults.StarvationEscalationSeconds = bound
	res := machine.Simulate(cfg, 11)
	if res.Escalations == 0 {
		t.Fatal("the watchdog never fired despite blackout stretches past its bound")
	}
}

// Rack assignments without any fault process are inert: the simulation
// is bit-identical to the rack-less machine.
func TestMachineRacksInertWithoutFaults(t *testing.T) {
	cfg := machine.Config{
		Jobs:          []machine.JobSpec{testJob(policy.M1, 0), testJob(policy.P2, 0), testJob(policy.B, 600)},
		PFSCeilingGBs: 8,
	}
	plain := machine.Simulate(cfg, 42)
	cfg.Racks = []int{0, 0, 1}
	racked := machine.Simulate(cfg, 42)
	if !reflect.DeepEqual(plain, racked) {
		t.Fatal("rack assignments changed a fault-free simulation")
	}
}
