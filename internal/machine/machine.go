package machine

import (
	"fmt"

	"pckpt/internal/crmodel"
	"pckpt/internal/faultinject"
	"pckpt/internal/metrics"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/rng"
	"pckpt/internal/stats"
	"pckpt/internal/stepsim"
)

// JobSpec is one application submitted to the machine: a model from the
// catalogue on its own platform cell, arriving at ArrivalSeconds.
type JobSpec struct {
	// Model is the C/R policy the job runs.
	Model policy.ID
	// Platform is the job's tier-independent platform configuration.
	Platform platform.Config
	// ArrivalSeconds is when the job enters the admission queue.
	ArrivalSeconds float64
}

// need returns the node count the job occupies while running: its
// application nodes plus its private spare pool. An unbounded spare
// pool (SpareNodes zero) reserves nothing — the solo tiers model those
// spares as free, so the machine does too.
func (j JobSpec) need() int {
	n := j.Platform.App.Nodes
	if j.Platform.SpareNodes > 0 {
		n += j.Platform.SpareNodes
	}
	return n
}

// Config parameterises one shared-machine simulation.
type Config struct {
	// Jobs is the cohort of applications contending for the machine.
	Jobs []JobSpec
	// Nodes is the machine's node pool; a job occupies its application
	// nodes plus spares while running. Zero defaults to the sum of all
	// job needs (every job fits concurrently — contention is then purely
	// over bandwidth).
	Nodes int
	// PFSCeilingGBs is the file-system-wide bandwidth ceiling shared by
	// all tenants. Zero defaults to the first job's I/O model ceiling.
	PFSCeilingGBs float64
	// MaxConcurrentDrains bounds how many BB→PFS drains run at once
	// machine-wide. Zero defaults to the first job's I/O drain
	// concurrency.
	MaxConcurrentDrains int
	// Admission decides when queued jobs start; nil defaults to FIFO.
	Admission AdmissionPolicy
	// Faults is the machine-scope fault plan: PFS brownout/blackout
	// windows, drain-slot outages, whole-tenant crashes with admission
	// requeue, and the starvation watchdog. The zero value is a healthy
	// machine — Simulate is then bit-identical to the plan not existing.
	Faults faultinject.MachineConfig
	// Racks groups jobs into fault domains: Racks[i] is job i's rack, and
	// one crash draw strikes every running tenant of the struck rack.
	// Empty defaults to each job in its own rack (uncorrelated crashes).
	Racks []int
	// Metrics, when non-nil, receives machine-level metrics under the
	// "machine." prefix (plus each job's own step-tier metrics).
	Metrics *metrics.Registry
	// OnAlloc, when non-nil, observes every bandwidth repricing — the
	// conservation probe (total allocation never exceeds the
	// instantaneous ceiling, brownouts included).
	OnAlloc func(t, totalGBs, ceilingGBs float64)
}

// WithDefaults returns a copy with zero fields defaulted; job platforms
// are defaulted too so node needs and I/O ceilings are derivable.
// Simulate applies it; external validators (the scenario compiler) call
// it to see the effective configuration Validate will judge.
func (c Config) WithDefaults() Config {
	jobs := make([]JobSpec, len(c.Jobs))
	copy(jobs, c.Jobs)
	c.Jobs = jobs
	for i := range c.Jobs {
		c.Jobs[i].Platform = c.Jobs[i].Platform.WithDefaults()
	}
	if len(c.Jobs) > 0 {
		io := c.Jobs[0].Platform.IO.Config()
		if c.PFSCeilingGBs == 0 {
			c.PFSCeilingGBs = io.AggregatePFSCeilingGBs
		}
		if c.MaxConcurrentDrains == 0 {
			c.MaxConcurrentDrains = io.DrainConcurrency
		}
	}
	if c.Nodes == 0 {
		for _, j := range c.Jobs {
			c.Nodes += j.need()
		}
	}
	if c.Admission == nil {
		c.Admission = FIFO{}
	}
	return c
}

// Validate reports a configuration error, or nil. Call on the defaulted
// config.
func (c Config) Validate() error {
	if len(c.Jobs) == 0 {
		return fmt.Errorf("machine: no jobs")
	}
	if c.PFSCeilingGBs <= 0 {
		return fmt.Errorf("machine: non-positive PFS ceiling %g", c.PFSCeilingGBs)
	}
	if c.MaxConcurrentDrains <= 0 {
		return fmt.Errorf("machine: non-positive drain concurrency %d", c.MaxConcurrentDrains)
	}
	for i, j := range c.Jobs {
		if j.ArrivalSeconds < 0 {
			return fmt.Errorf("machine: job %d arrives at negative time %g", i, j.ArrivalSeconds)
		}
		sc := stepsim.Config{Model: j.Model, Config: j.Platform}
		if err := sc.Validate(); err != nil {
			return fmt.Errorf("machine: job %d: %w", i, err)
		}
		if need := j.need(); need > c.Nodes {
			return fmt.Errorf("machine: job %d needs %d nodes (app+spares), machine has %d", i, need, c.Nodes)
		}
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if len(c.Racks) > 0 {
		if len(c.Racks) != len(c.Jobs) {
			return fmt.Errorf("machine: %d rack assignments for %d jobs", len(c.Racks), len(c.Jobs))
		}
		for i, r := range c.Racks {
			if r < 0 || r >= len(c.Jobs) {
				return fmt.Errorf("machine: job %d assigned to rack %d (want 0..%d)", i, r, len(c.Jobs)-1)
			}
		}
	}
	return nil
}

// JobResult is one job's outcome on the shared machine, alongside its
// solo baseline on an otherwise-idle machine.
type JobResult struct {
	// Job indexes Config.Jobs; Model echoes the job's policy.
	Job   int
	Model policy.ID
	// ArrivalSeconds, StartSeconds, and EndSeconds are machine times.
	ArrivalSeconds float64
	StartSeconds   float64
	EndSeconds     float64
	// QueueWaitSeconds is the admission delay (start minus arrival).
	QueueWaitSeconds float64
	// StarvationSeconds is the total time the job had a runnable PFS
	// transfer allocated zero bandwidth.
	StarvationSeconds float64
	// MaxStarvationStretchSeconds is the job's longest single stretch
	// with a runnable transfer at zero bandwidth — the quantity the
	// starvation watchdog bounds.
	MaxStarvationStretchSeconds float64
	// Crashes counts machine-fault tenant crashes that struck this job
	// while it was running (each costs a backoff and a readmission, or —
	// past the retry bound — ends the job truncated).
	Crashes int
	// SoloWallSeconds is the same job's wall time run alone (same
	// platform, same seed, no contention); SlowdownX is the contended
	// wall time over it — ≥ 1 up to float error, exactly 1 when the
	// machine never contends.
	SoloWallSeconds float64
	SlowdownX       float64
	// Run is the job's full step-tier accounting under contention.
	Run stats.RunResult
}

// Result is one shared-machine simulation's outcome.
type Result struct {
	// Jobs holds per-job outcomes, indexed like Config.Jobs.
	Jobs []JobResult
	// Decisions is the admission log in decision order.
	Decisions []RoutingDecision
	// MakespanSeconds is when the last job finished; PeakAllocGBs the
	// highest total bandwidth allocation any repricing reached.
	MakespanSeconds float64
	PeakAllocGBs    float64
	// Machine-fault accounting, all zero when the fault plan is
	// disabled: brownout windows opened (and their total span), drain
	// outages, tenant-crash strikes, crash requeues granted, and
	// starvation-watchdog escalations.
	Brownouts       int
	BrownoutSeconds float64
	DrainOutages    int
	TenantCrashes   int
	CrashRequeues   int
	Escalations     int
}

// machineMaxEvents scales the solo per-run watchdog by cohort size.
const machineMaxEvents = 100_000_000

// Simulate runs the whole cohort on one shared step engine and returns
// per-job and machine-wide outcomes. Deterministic in (cfg, seed): jobs
// are admitted by cfg.Admission as nodes free up, all PFS transfers
// contend at a shared BandwidthArbiter, and each job runs bit-identical
// to a solo run except where contention stretches its transfers. Job i
// draws seed crmodel.RunSeed(seed, i), the same derivation the sweep
// runners use.
func Simulate(cfg Config, seed uint64) Result {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	eng := stepsim.NewEngine()
	eng.SetWatchdog(uint64(len(cfg.Jobs))*machineMaxEvents, 0)
	arb := NewBandwidthArbiter(eng, cfg.PFSCeilingGBs, cfg.MaxConcurrentDrains, len(cfg.Jobs))

	fi := faultinject.NewMachine(cfg.Faults, rng.New(seed).Split(faultinject.MachineStreamKey))
	if bound := fi.MachineConfig().StarvationEscalationSeconds; bound > 0 {
		arb.SetStarvationEscalation(bound)
	}

	res := Result{Jobs: make([]JobResult, len(cfg.Jobs))}
	arb.SetAllocObserver(func(t, total, ceiling float64) {
		if total > res.PeakAllocGBs {
			res.PeakAllocGBs = total
		}
		if cfg.OnAlloc != nil {
			cfg.OnAlloc(t, total, ceiling)
		}
	})

	tenants := make([]tenantState, len(cfg.Jobs))
	var m struct {
		queue     []PendingJob
		freeNodes int
	}
	m.freeNodes = cfg.Nodes
	var tryAdmit func()
	tryAdmit = func() {
		for {
			idx, ok := cfg.Admission.Admit(m.queue, m.freeNodes)
			if !ok {
				return
			}
			p := m.queue[idx]
			m.queue = append(m.queue[:idx], m.queue[idx+1:]...)
			m.freeNodes -= p.Nodes
			now := eng.Now()
			res.Decisions = append(res.Decisions, RoutingDecision{Kind: DecisionAdmit, Job: p.Job, AtSeconds: now, Nodes: p.Nodes})
			jr := &res.Jobs[p.Job]
			ten := &tenants[p.Job]
			if ten.crashes == 0 {
				jr.StartSeconds = now
			}
			jr.QueueWaitSeconds += now - p.ArrivalSeconds
			job := cfg.Jobs[p.Job]
			// A readmitted job replays a fresh seed derived from its crash
			// count, so retry runs are independent draws but the whole
			// machine stays deterministic in (cfg, seed).
			jobSeed := crmodel.RunSeed(seed, p.Job)
			if ten.crashes > 0 {
				jobSeed = crmodel.RunSeed(jobSeed, ten.crashes)
			}
			ten.running = true
			ten.handle = stepsim.StartApp(eng, stepsim.Config{
				Model:   job.Model,
				Config:  job.Platform,
				Metrics: cfg.Metrics,
			}, jobSeed, stepsim.AppOptions{
				Arbiter:  arb,
				AppIndex: p.Job,
				OnDone: func(r stats.RunResult) {
					jr.EndSeconds = eng.Now()
					jr.Run = r
					ten.running = false
					ten.finished = true
					m.freeNodes += p.Nodes
					tryAdmit()
				},
			})
		}
	}
	for i, j := range cfg.Jobs {
		res.Jobs[i] = JobResult{Job: i, Model: j.Model, ArrivalSeconds: j.ArrivalSeconds}
		i, j := i, j
		eng.AtNamed(j.ArrivalSeconds, "job-arrival", func() {
			m.queue = append(m.queue, PendingJob{Job: i, Nodes: j.need(), ArrivalSeconds: j.ArrivalSeconds})
			tryAdmit()
		})
	}
	if fi != nil {
		d := &faultDriver{
			eng: eng, arb: arb, fi: fi, cfg: &cfg, res: &res,
			tenants: tenants,
			requeue: func(j int, p PendingJob) {
				m.queue = append(m.queue, p)
				tryAdmit()
			},
			freeNodes: func(n int) { m.freeNodes += n },
			tryAdmit:  func() { tryAdmit() },
		}
		d.start()
	}
	eng.RunAll()
	eng.Release()
	// Makespan is the last departure, not the engine clock: the failure
	// streams park wake-events past each app's completion.
	for i := range res.Jobs {
		res.MakespanSeconds = max(res.MakespanSeconds, res.Jobs[i].EndSeconds)
	}

	// Solo baselines: the same job, platform, and seed on an idle
	// machine — the slowdown denominator.
	for i := range res.Jobs {
		jr := &res.Jobs[i]
		job := cfg.Jobs[i]
		solo := stepsim.Simulate(stepsim.Config{Model: job.Model, Config: job.Platform}, crmodel.RunSeed(seed, i))
		jr.SoloWallSeconds = solo.WallSeconds
		if solo.WallSeconds > 0 {
			jr.SlowdownX = jr.Run.WallSeconds / solo.WallSeconds
		}
		jr.StarvationSeconds = arb.StarvationSeconds(i)
		jr.MaxStarvationStretchSeconds = arb.MaxStarvationStretchSeconds(i)
	}
	res.Escalations = arb.EscalationCount()
	observeMachineMetrics(cfg, &res)
	return res
}

// tenantState is the driver's per-job lifecycle bookkeeping: the live
// app handle while running, and the crash count driving retry seeds,
// backoff, and the give-up bound.
type tenantState struct {
	handle   *stepsim.AppHandle
	running  bool
	finished bool
	crashes  int
}

// observeMachineMetrics publishes machine-level outcomes to the
// registry under the "machine." prefix.
func observeMachineMetrics(cfg Config, res *Result) {
	r := cfg.Metrics
	if r == nil {
		return
	}
	queueWait := r.Histogram("machine.queue_wait_seconds")
	slowdown := r.Histogram("machine.slowdown_x")
	starve := r.Histogram("machine.starvation_seconds")
	stretch := r.Histogram("machine.max_starvation_stretch_seconds")
	crashes := r.Counter("machine.tenant_crashes")
	trunc := r.Counter("machine.jobs_truncated")
	peak := r.Gauge("machine.peak_alloc_gbs")
	for _, jr := range res.Jobs {
		queueWait.Observe(jr.QueueWaitSeconds)
		slowdown.Observe(jr.SlowdownX)
		starve.Observe(jr.StarvationSeconds)
		stretch.Observe(jr.MaxStarvationStretchSeconds)
		crashes.Add(float64(jr.Crashes))
		if jr.Run.Truncated {
			trunc.Inc()
		}
	}
	peak.Set(res.MakespanSeconds, res.PeakAllocGBs)
	r.Counter("machine.brownouts").Add(float64(res.Brownouts))
	r.Counter("machine.brownout_seconds").Add(res.BrownoutSeconds)
	r.Counter("machine.drain_outages").Add(float64(res.DrainOutages))
	r.Counter("machine.crash_requeues").Add(float64(res.CrashRequeues))
	r.Counter("machine.starvation_escalations").Add(float64(res.Escalations))
}

// SimulateN executes runs independent machine simulations (run r draws
// seed crmodel.RunSeed(seed, r)) across workers goroutines, returning
// results indexed by run — identical for any worker count.
func SimulateN(cfg Config, runs int, seed uint64, workers int) []Result {
	if runs <= 0 {
		return nil
	}
	// Shared observers would race across workers (crmodel's sweeps drop
	// them for the same reason); per-run introspection uses Simulate.
	cfg.Metrics = nil
	cfg.OnAlloc = nil
	if workers <= 0 {
		workers = 1
	}
	if workers > runs {
		workers = runs
	}
	out := make([]Result, runs)
	if workers == 1 {
		for r := 0; r < runs; r++ {
			out[r] = Simulate(cfg, crmodel.RunSeed(seed, r))
		}
		return out
	}
	work := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for r := range work {
				out[r] = Simulate(cfg, crmodel.RunSeed(seed, r))
			}
		}()
	}
	for r := 0; r < runs; r++ {
		work <- r
	}
	close(work)
	for w := 0; w < workers; w++ {
		<-done
	}
	return out
}
