package machine_test

import (
	"testing"

	"pckpt/internal/machine"
	"pckpt/internal/policy"
	"pckpt/internal/stepsim"
)

// BenchmarkArbiterReprice measures the arbiter's hot path: a standing
// population of fair-share flows with a churn of starts and completions,
// each mutation triggering a full repricing (advance + water-fill +
// timer reschedule).
func BenchmarkArbiterReprice(b *testing.B) {
	eng := stepsim.NewEngine()
	arb := machine.NewBandwidthArbiter(eng, 100, 1<<20, 8)
	// A standing population the churn flows contend against.
	for i := 0; i < 32; i++ {
		arb.StartFlow(i%8, stepsim.ClassCollective, 1e12, 1e10, func() {})
	}
	flows := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arb.StartFlow(i%8, stepsim.ClassVulnerable, 1, 1, func() { flows++ })
		for eng.HasPendingEvents() {
			if t, ok := eng.PeekNextEventTime(); !ok || t > eng.Now()+2 {
				break
			}
			eng.ProcessNextEvent()
		}
	}
	b.ReportMetric(float64(flows)/b.Elapsed().Seconds(), "flows/sec")
}

// BenchmarkMachineSimulate measures a whole contended-machine run:
// three M1 tenants on a starved PFS, admission through departure,
// including the three solo-baseline runs.
func BenchmarkMachineSimulate(b *testing.B) {
	jobs := []machine.JobSpec{testJob(policy.M1, 0), testJob(policy.M1, 0), testJob(policy.M1, 1800)}
	for i := range jobs {
		jobs[i].Platform.SpareNodes = 0
	}
	cfg := machine.Config{Jobs: jobs, PFSCeilingGBs: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine.Simulate(cfg, uint64(i+1))
	}
}
