package machine_test

import (
	"math"
	"testing"

	"pckpt/internal/machine"
	"pckpt/internal/stepsim"
)

// near reports a ≈ b within a relative ulp-scale tolerance — flow
// completion times are quotients of the solo inputs, so exact float
// equality is not guaranteed.
func near(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))+1e-12
}

// An uncontended flow completes at its solo duration: the arbiter never
// speeds a transfer past its solo price.
func TestArbiterSoloFlowCompletesAtSoloDuration(t *testing.T) {
	eng := stepsim.NewEngine()
	arb := machine.NewBandwidthArbiter(eng, 1000, 4, 1)
	doneAt := -1.0
	arb.StartFlow(0, stepsim.ClassCollective, 100, 10, func() { doneAt = eng.Now() })
	eng.RunAll()
	if !near(doneAt, 10) {
		t.Fatalf("uncontended flow finished at %g, want 10", doneAt)
	}
}

// Two flows whose solo rates each saturate the ceiling fair-share it:
// each runs at half rate and takes twice its solo time.
func TestArbiterFairShareStretchesEqualFlows(t *testing.T) {
	eng := stepsim.NewEngine()
	arb := machine.NewBandwidthArbiter(eng, 100, 4, 2)
	var at [2]float64
	for i := 0; i < 2; i++ {
		i := i
		arb.StartFlow(i, stepsim.ClassCollective, 1000, 10, func() { at[i] = eng.Now() })
	}
	eng.RunAll()
	for i, got := range at {
		if !near(got, 20) {
			t.Fatalf("flow %d finished at %g, want 20 (fair share of a saturated ceiling)", i, got)
		}
	}
}

// The vulnerable lane is served first at its full solo rate; fair-share
// traffic gets the remainder.
func TestArbiterVulnerableLanePriority(t *testing.T) {
	eng := stepsim.NewEngine()
	arb := machine.NewBandwidthArbiter(eng, 100, 4, 2)
	var vulnAt, collAt float64
	// Collective wants the whole ceiling (1000GB at solo rate 100);
	// vulnerable wants 60 (600GB at solo rate 60).
	arb.StartFlow(0, stepsim.ClassCollective, 1000, 10, func() { collAt = eng.Now() })
	arb.StartFlow(1, stepsim.ClassVulnerable, 600, 10, func() { vulnAt = eng.Now() })
	eng.RunAll()
	// Vulnerable runs at 60 throughout: done at 10. Collective gets 40
	// until then (400GB moved), then the full 100: 10 + 600/100 = 16.
	if !near(vulnAt, 10) {
		t.Fatalf("vulnerable flow finished at %g, want 10 (solo rate despite contention)", vulnAt)
	}
	if !near(collAt, 16) {
		t.Fatalf("collective flow finished at %g, want 16", collAt)
	}
}

// Drains contend for the shared slot budget: with one slot, a second
// drain queues (holding no bandwidth) until the first departs.
func TestArbiterDrainSlotsQueueFIFO(t *testing.T) {
	eng := stepsim.NewEngine()
	arb := machine.NewBandwidthArbiter(eng, 1000, 1, 2)
	var at [2]float64
	for i := 0; i < 2; i++ {
		i := i
		arb.StartFlow(i, stepsim.ClassDrain, 100, 10, func() { at[i] = eng.Now() })
	}
	if got := arb.QueuedDrains(); got != 1 {
		t.Fatalf("QueuedDrains = %d, want 1", got)
	}
	eng.RunAll()
	if !near(at[0], 10) || !near(at[1], 20) {
		t.Fatalf("drains finished at %g and %g, want 10 and 20 (serialized by the slot)", at[0], at[1])
	}
}

// Suspend freezes a flow's remaining volume and releases its bandwidth;
// resume continues from where it stopped.
func TestArbiterSuspendResume(t *testing.T) {
	eng := stepsim.NewEngine()
	arb := machine.NewBandwidthArbiter(eng, 1000, 4, 1)
	doneAt := -1.0
	id := arb.StartFlow(0, stepsim.ClassCollective, 100, 10, func() { doneAt = eng.Now() })
	eng.At(4, func() { arb.SuspendFlow(id) })
	eng.At(7, func() { arb.ResumeFlow(id) })
	eng.RunAll()
	// 4s of transfer, 3s frozen, 6s remaining: done at 13.
	if !near(doneAt, 13) {
		t.Fatalf("suspended flow finished at %g, want 13", doneAt)
	}
}

// A cancelled flow never completes, and its bandwidth returns to the
// survivors immediately.
func TestArbiterCancelReleasesBandwidth(t *testing.T) {
	eng := stepsim.NewEngine()
	arb := machine.NewBandwidthArbiter(eng, 100, 4, 2)
	cancelled, survivorAt := false, -1.0
	id := arb.StartFlow(0, stepsim.ClassCollective, 1000, 10, func() { cancelled = true })
	arb.StartFlow(1, stepsim.ClassCollective, 1000, 10, func() { survivorAt = eng.Now() })
	eng.At(10, func() { arb.CancelFlow(id) })
	eng.RunAll()
	if cancelled {
		t.Fatal("cancelled flow's done fired")
	}
	// Fair share (50) for 10s moves 500GB; the survivor then takes the
	// full ceiling, finishing the remaining 500GB in 5s: done at 15.
	if !near(survivorAt, 15) {
		t.Fatalf("survivor finished at %g, want 15", survivorAt)
	}
}

// The conservation property: at every repricing, the summed allocation
// never exceeds the ceiling, and starved time is accounted.
func TestArbiterConservationAndStarvation(t *testing.T) {
	eng := stepsim.NewEngine()
	const ceiling = 100.0
	arb := machine.NewBandwidthArbiter(eng, ceiling, 4, 3)
	arb.SetAllocObserver(func(at, total, ceil float64) {
		if total > ceil*(1+1e-9) {
			t.Fatalf("allocation %g exceeds ceiling %g at t=%g", total, ceil, at)
		}
	})
	// Two vulnerable flows soak the whole ceiling; the collective flow
	// starves until one finishes.
	arb.StartFlow(0, stepsim.ClassVulnerable, 500, 10, func() {})
	arb.StartFlow(1, stepsim.ClassVulnerable, 500, 10, func() {})
	arb.StartFlow(2, stepsim.ClassCollective, 100, 10, func() {})
	eng.RunAll()
	if got := arb.StarvationSeconds(2); !near(got, 10) {
		t.Fatalf("StarvationSeconds(2) = %g, want 10 (starved until the lane drained)", got)
	}
	if got := arb.StarvationSeconds(0); got != 0 {
		t.Fatalf("StarvationSeconds(0) = %g, want 0", got)
	}
}
