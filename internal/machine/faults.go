package machine

import (
	"pckpt/internal/faultinject"
	"pckpt/internal/stepsim"
)

// faultDriver runs the machine-scope fault plan against a live
// simulation: three independent Poisson processes (PFS brownouts,
// drain-slot outages, rack crashes), each drawing gaps and windows from
// its own substream of the plan's RNG, scheduled as ordinary engine
// events so the whole degraded machine stays a deterministic
// single-goroutine simulation. Every process stops rescheduling once
// all tenants have finished, so the engine drains.
type faultDriver struct {
	eng *stepsim.Engine
	arb *BandwidthArbiter
	fi  *faultinject.MachineInjector
	cfg *Config
	res *Result

	tenants []tenantState
	// racks maps job → fault domain; one crash draw strikes every
	// running tenant of the drawn rack.
	racks    []int
	numRacks int

	// Hooks back into the driver's admission state (closures over
	// Simulate's queue): requeue re-enters a crashed job, freeNodes
	// credits the pool, tryAdmit re-runs the admission policy.
	requeue   func(j int, p PendingJob)
	freeNodes func(n int)
	tryAdmit  func()

	baseCeiling float64
	baseDrains  int
}

// start wires the rack map and schedules the first gap of every enabled
// fault process. Must run before the engine does (time zero).
func (d *faultDriver) start() {
	d.racks = d.cfg.Racks
	if len(d.racks) == 0 {
		d.racks = make([]int, len(d.cfg.Jobs))
		for i := range d.racks {
			d.racks[i] = i
		}
	}
	for _, r := range d.racks {
		if r >= d.numRacks {
			d.numRacks = r + 1
		}
	}
	d.baseCeiling = d.arb.Ceiling()
	d.baseDrains = d.arb.MaxDrains()
	mc := d.fi.MachineConfig()
	if mc.BrownoutRatePerHour > 0 {
		d.eng.AtNamed(d.fi.NextBrownoutGap(), "machine-brownout", d.brownoutOpen)
	}
	if mc.DrainOutageRatePerHour > 0 {
		d.eng.AtNamed(d.fi.NextDrainOutageGap(), "machine-drain-outage", d.drainOutageOpen)
	}
	if mc.CrashRatePerHour > 0 {
		d.eng.AtNamed(d.fi.NextCrashGap(), "machine-crash", d.crashStrike)
	}
}

// allDone reports whether every job has left the machine for good —
// completed, or truncated past its crash-retry bound.
func (d *faultDriver) allDone() bool {
	for i := range d.tenants {
		if !d.tenants[i].finished {
			return false
		}
	}
	return true
}

// brownoutOpen starts one brownout window: the arbiter's ceiling drops
// to base×factor (zero on a blackout) and every in-flight transfer
// reprices mid-stream. Windows are sequential — the next gap is drawn
// when this window closes.
func (d *faultDriver) brownoutOpen() {
	if d.allDone() {
		return
	}
	dur, factor := d.fi.BrownoutWindow()
	d.res.Brownouts++
	d.res.BrownoutSeconds += dur
	d.arb.SetCeiling(d.baseCeiling * factor)
	d.eng.AtNamed(dur, "machine-brownout", func() {
		d.arb.SetCeiling(d.baseCeiling)
		if d.allDone() {
			return
		}
		d.eng.AtNamed(d.fi.NextBrownoutGap(), "machine-brownout", d.brownoutOpen)
	})
}

// drainOutageOpen starts one drain-slot outage: the machine-wide drain
// budget shrinks (to no less than zero) and the most recently admitted
// in-flight drains requeue FIFO at the head of the slot queue.
func (d *faultDriver) drainOutageOpen() {
	if d.allDone() {
		return
	}
	dur, slots := d.fi.DrainOutageWindow()
	d.res.DrainOutages++
	d.arb.SetMaxDrains(max(d.baseDrains-slots, 0))
	d.eng.AtNamed(dur, "machine-drain-outage", func() {
		d.arb.SetMaxDrains(d.baseDrains)
		if d.allDone() {
			return
		}
		d.eng.AtNamed(d.fi.NextDrainOutageGap(), "machine-drain-outage", d.drainOutageOpen)
	})
}

// crashStrike fires one planned rack crash. The rack is drawn
// unconditionally — the plan's timeline is independent of machine state
// — and every running tenant of that rack aborts: its flows leave the
// arbiter, its nodes return to the pool, and it either re-enters the
// admission queue after an exponential backoff or (past the retry
// bound) ends as a truncated run.
func (d *faultDriver) crashStrike() {
	if d.allDone() {
		return
	}
	rack := d.fi.CrashRack(d.numRacks)
	struck := false
	for j := range d.tenants {
		if d.racks[j] == rack && d.tenants[j].running {
			d.crashTenant(j)
			struck = true
		}
	}
	if struck {
		d.tryAdmit()
	}
	d.eng.AtNamed(d.fi.NextCrashGap(), "machine-crash", d.crashStrike)
}

// crashTenant aborts one running job and routes it through the crash
// lifecycle: crash → requeue (bounded, exponential backoff) or
// crash → give-up with the truncated-run marker.
func (d *faultDriver) crashTenant(j int) {
	ten := &d.tenants[j]
	now := d.eng.Now()
	nodes := d.cfg.Jobs[j].need()
	partial := ten.handle.Abort()
	ten.handle = nil
	ten.running = false
	ten.crashes++
	d.freeNodes(nodes)
	jr := &d.res.Jobs[j]
	jr.Crashes++
	d.res.TenantCrashes++
	d.res.Decisions = append(d.res.Decisions, RoutingDecision{Kind: DecisionCrash, Job: j, AtSeconds: now, Nodes: nodes})
	if ten.crashes > d.fi.MachineConfig().CrashMaxRetries {
		// Retry budget exhausted: the job leaves the machine as the
		// truncated partial run — the PR 5/PR 9 degradation marker —
		// rather than panicking or spinning forever.
		jr.Run = partial
		jr.EndSeconds = now
		ten.finished = true
		d.res.Decisions = append(d.res.Decisions, RoutingDecision{Kind: DecisionGiveUp, Job: j, AtSeconds: now, Nodes: nodes})
		return
	}
	d.res.CrashRequeues++
	backoff := d.fi.CrashBackoffSeconds(ten.crashes)
	d.eng.AtNamed(backoff, "machine-requeue", func() {
		t := d.eng.Now()
		d.res.Decisions = append(d.res.Decisions, RoutingDecision{Kind: DecisionRequeue, Job: j, AtSeconds: t, Nodes: nodes})
		d.requeue(j, PendingJob{Job: j, Nodes: nodes, ArrivalSeconds: t})
	})
}
