package machine

import "fmt"

// PendingJob is one queued job as the admission policy sees it: its
// index in the machine's job list, the node count it needs (application
// nodes plus its spare pool), and when it arrived.
type PendingJob struct {
	Job            int
	Nodes          int
	ArrivalSeconds float64
}

// Decision kinds: every entry in the machine's routing log is one of
// these. Admissions are the only kind a healthy machine emits; the
// machine-fault layer adds the crash lifecycle (crash → requeue →
// admit, or crash → give-up at retry exhaustion).
const (
	DecisionAdmit   = "admit"
	DecisionCrash   = "crash"
	DecisionRequeue = "requeue"
	DecisionGiveUp  = "give-up"
)

// RoutingDecision records one control-plane event: which job, at what
// time, over how many nodes, and what happened (a Decision* kind). The
// control plane splits deciding (AdmissionPolicy.Admit) from acting
// (the machine driver starts the app and debits the node pool) so a
// decision is a plain, loggable value — the admission/routing
// separation of the exemplar control plane.
type RoutingDecision struct {
	Kind      string
	Job       int
	AtSeconds float64
	Nodes     int
}

// AdmissionPolicy decides which queued job, if any, starts next on a
// machine with freeNodes unoccupied nodes. queue is ordered by arrival
// (FIFO); the policy returns the index *into queue* of the job to admit
// and true, or false to admit nothing this round. The driver calls
// Admit again after every admission and every job departure, so a
// policy only ever picks one job at a time.
type AdmissionPolicy interface {
	Name() string
	Admit(queue []PendingJob, freeNodes int) (int, bool)
}

// FIFO admits strictly in arrival order: the head job starts when it
// fits, and a too-large head blocks everything behind it (no
// leapfrogging, no starvation).
type FIFO struct{}

// Name implements AdmissionPolicy.
func (FIFO) Name() string { return "fifo" }

// Admit implements AdmissionPolicy.
func (FIFO) Admit(queue []PendingJob, freeNodes int) (int, bool) {
	if len(queue) > 0 && queue[0].Nodes <= freeNodes {
		return 0, true
	}
	return 0, false
}

// SmallestFit admits the smallest queued job that fits (ties broken by
// arrival order): a backfilling policy that trades FIFO's fairness for
// utilization — a wide job can wait indefinitely behind a stream of
// narrow ones.
type SmallestFit struct{}

// Name implements AdmissionPolicy.
func (SmallestFit) Name() string { return "smallest-fit" }

// Admit implements AdmissionPolicy.
func (SmallestFit) Admit(queue []PendingJob, freeNodes int) (int, bool) {
	best, found := 0, false
	for i, p := range queue {
		if p.Nodes > freeNodes {
			continue
		}
		if !found || p.Nodes < queue[best].Nodes {
			best, found = i, true
		}
	}
	return best, found
}

// AdmissionFor returns the named admission policy ("" and "fifo" map to
// FIFO, "smallest-fit" to SmallestFit).
func AdmissionFor(name string) (AdmissionPolicy, error) {
	switch name {
	case "", "fifo":
		return FIFO{}, nil
	case "smallest-fit":
		return SmallestFit{}, nil
	}
	return nil, fmt.Errorf("machine: unknown admission policy %q (want fifo or smallest-fit)", name)
}
