package machine_test

import (
	"reflect"
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/machine"
	"pckpt/internal/metrics"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/workload"
)

// testJob is a small, failure-busy cell that finishes fast on the step
// tier while still exercising predictions, episodes, and recoveries.
func testJob(model policy.ID, arrival float64) machine.JobSpec {
	return machine.JobSpec{
		Model: model,
		Platform: platform.Config{
			App:        workload.App{Name: "tenant", Nodes: 16, TotalCkptGB: 320, ComputeHours: 4},
			System:     failure.System{Name: "busy", Shape: 0.75, ScaleHours: 2, Nodes: 16},
			SpareNodes: 2,
		},
		ArrivalSeconds: arrival,
	}
}

// A one-job machine is an idle machine: the job's slowdown is 1 within
// float error (the arbiter prices every flow at its solo rate).
func TestMachineSingleJobNoSlowdown(t *testing.T) {
	for _, model := range []policy.ID{policy.B, policy.M1, policy.P2} {
		res := machine.Simulate(machine.Config{Jobs: []machine.JobSpec{testJob(model, 0)}}, 7)
		jr := res.Jobs[0]
		if jr.SlowdownX < 1-1e-9 || jr.SlowdownX > 1+1e-9 {
			t.Errorf("%v: solo-machine slowdown %.12f, want 1", model, jr.SlowdownX)
		}
		if jr.QueueWaitSeconds != 0 {
			t.Errorf("%v: queue wait %g on an empty machine", model, jr.QueueWaitSeconds)
		}
	}
}

// Contending tenants on a starved PFS slow down but never speed up, and
// the conservation property holds at every repricing.
func TestMachineContentionSlowdownAndConservation(t *testing.T) {
	const ceiling = 3.0 // GB/s — far below any tenant's solo demand
	// M1 tenants with unbounded spares: safeguards and PFS-restore
	// recoveries are blocking arbitered transfers, and no run truncates
	// (a truncated wall is pinned by the failure stream, not by how far
	// contention stretched the transfers).
	jobs := []machine.JobSpec{testJob(policy.M1, 0), testJob(policy.M1, 0), testJob(policy.M1, 1800)}
	for i := range jobs {
		jobs[i].Platform.SpareNodes = 0
	}
	cfg := machine.Config{
		Jobs:          jobs,
		PFSCeilingGBs: ceiling,
		OnAlloc: func(at, total, ceil float64) {
			if total > ceil*(1+1e-9) {
				t.Fatalf("allocation %g exceeds ceiling %g at t=%g", total, ceil, at)
			}
		},
	}
	res := machine.Simulate(cfg, 11)
	slowed := 0
	for _, jr := range res.Jobs {
		if jr.SlowdownX < 1-1e-9 {
			t.Fatalf("job %d sped up under contention: slowdown %.12f", jr.Job, jr.SlowdownX)
		}
		if jr.SlowdownX > 1+1e-9 {
			slowed++
		}
	}
	if slowed == 0 {
		t.Fatal("no tenant slowed down on a 3 GB/s machine — contention never priced in")
	}
	if res.PeakAllocGBs > ceiling*(1+1e-9) {
		t.Fatalf("peak allocation %g exceeds ceiling %g", res.PeakAllocGBs, ceiling)
	}
}

// A machine sized for one tenant serializes the cohort FIFO: each job
// starts when its predecessor departs, and queue waits accumulate.
func TestMachineFIFOAdmissionSerializes(t *testing.T) {
	job := testJob(policy.B, 0)
	cfg := machine.Config{
		Jobs:  []machine.JobSpec{job, job, job},
		Nodes: 18, // exactly one tenant's need (16 app + 2 spares)
	}
	res := machine.Simulate(cfg, 3)
	if len(res.Decisions) != 3 {
		t.Fatalf("%d routing decisions, want 3", len(res.Decisions))
	}
	for i, d := range res.Decisions {
		if d.Job != i {
			t.Fatalf("decision %d admitted job %d, want FIFO order", i, d.Job)
		}
	}
	for i := 1; i < 3; i++ {
		prev, jr := res.Jobs[i-1], res.Jobs[i]
		if jr.StartSeconds != prev.EndSeconds {
			t.Errorf("job %d started at %g, want %g (predecessor's departure)", i, jr.StartSeconds, prev.EndSeconds)
		}
		if jr.QueueWaitSeconds <= 0 {
			t.Errorf("job %d queue wait %g, want > 0", i, jr.QueueWaitSeconds)
		}
	}
}

// SmallestFit leapfrogs a wide head-of-line job when a narrow one fits;
// FIFO never does.
func TestMachineSmallestFitLeapfrogs(t *testing.T) {
	wide := testJob(policy.B, 0)
	wide.Platform.App.Nodes = 32
	wide.Platform.App.TotalCkptGB = 640
	wide.Platform.System.Nodes = 32
	narrow := testJob(policy.B, 0)
	running := testJob(policy.B, 0)
	cfg := machine.Config{
		// running occupies the machine first; wide (34 nodes) then
		// narrow (18) queue behind it on a 36-node machine.
		Jobs:      []machine.JobSpec{running, wide, narrow},
		Nodes:     36,
		Admission: machine.SmallestFit{},
	}
	res := machine.Simulate(cfg, 3)
	if res.Decisions[1].Job != 2 {
		t.Fatalf("second admission was job %d, want 2 (the narrow job leapfrogs)", res.Decisions[1].Job)
	}
	cfg.Admission = machine.FIFO{}
	res = machine.Simulate(cfg, 3)
	if res.Decisions[1].Job != 1 {
		t.Fatalf("second FIFO admission was job %d, want 1 (no leapfrogging)", res.Decisions[1].Job)
	}
}

// The machine simulation is deterministic in (cfg, seed) and across
// worker counts.
func TestMachineDeterministicAcrossWorkers(t *testing.T) {
	cfg := machine.Config{
		Jobs: []machine.JobSpec{
			testJob(policy.M1, 0),
			testJob(policy.P2, 600),
			testJob(policy.P1, 1200),
		},
		PFSCeilingGBs: 8,
		Nodes:         40, // two tenants fit; the third queues
	}
	serial := machine.SimulateN(cfg, 6, 42, 1)
	for _, workers := range []int{2, 5} {
		got := machine.SimulateN(cfg, 6, 42, workers)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("results differ between 1 and %d workers", workers)
		}
	}
}

// Machine metrics reach the registry under the machine. prefix.
func TestMachineMetricsPublished(t *testing.T) {
	reg := metrics.New()
	cfg := machine.Config{
		Jobs:    []machine.JobSpec{testJob(policy.M1, 0), testJob(policy.P2, 0)},
		Metrics: reg,
	}
	machine.Simulate(cfg, 5)
	if got := reg.Histogram("machine.queue_wait_seconds").Count(); got != 2 {
		t.Fatalf("queue_wait observations = %d, want 2", got)
	}
	if got := reg.Histogram("machine.slowdown_x").Count(); got != 2 {
		t.Fatalf("slowdown observations = %d, want 2", got)
	}
}

// An invalid cohort (job wider than the machine) is rejected.
func TestMachineValidateRejectsOversizedJob(t *testing.T) {
	cfg := machine.Config{Jobs: []machine.JobSpec{testJob(policy.B, 0)}, Nodes: 4}
	defer func() {
		if recover() == nil {
			t.Fatal("Simulate accepted a job wider than the machine")
		}
	}()
	machine.Simulate(cfg, 1)
}
