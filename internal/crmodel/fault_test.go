package crmodel

import (
	"strings"
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/platform"
	"pckpt/internal/sim"
	"pckpt/internal/stats"
)

// TestZeroRateInjectionBitIdentical pins the seed-derivation hygiene
// contract: arming the injection machinery with every rate at zero must
// be bit-identical to no injection at all, for every model, because the
// fault plan draws from its own rng substream and rate-zero hooks draw
// nothing. RestartRetries/backoff alone carry no rates, so they arm
// nothing.
func TestZeroRateInjectionBitIdentical(t *testing.T) {
	for _, m := range Models() {
		for seed := uint64(1); seed <= 20; seed++ {
			clean := Config{Model: m, Config: platform.Config{App: failApp, System: failure.Titan}}
			armed := clean
			armed.Faults = faultinject.Config{RestartRetries: 5, RestartBackoffSeconds: 60}
			a := Simulate(clean, seed)
			b := Simulate(armed, seed)
			if a != b {
				t.Fatalf("%s seed %d: rate-0 injection diverged from disabled:\n%+v\n%+v", m, seed, a, b)
			}
		}
	}
}

// TestInjectionDegradesDeterministically checks that a degraded run is
// reproducible, actually injects, and costs more than the clean run.
func TestInjectionDegradesDeterministically(t *testing.T) {
	faults := faultinject.Config{
		BBWriteFailProb:  0.2,
		PFSWriteFailProb: 0.2,
		CorruptProb:      0.1,
		RestartFailProb:  0.2,
		CascadeProb:      0.1,
	}
	for _, m := range Models() {
		cfg := Config{Model: m, Config: platform.Config{App: failApp, System: failure.Titan, Faults: faults}}
		a := Simulate(cfg, 777)
		if b := Simulate(cfg, 777); a != b {
			t.Fatalf("%s: degraded run not reproducible", m)
		}
		if a.BBWriteFailures+a.PFSWriteFailures == 0 {
			t.Errorf("%s: no write failures injected at 20%%", m)
		}
		// A single seed can go either way (a failed write also skips its
		// commit's cost); the mean over seeds must not.
		clean := cfg
		clean.Faults = faultinject.Config{}
		var degradedSum, cleanSum float64
		for seed := uint64(1); seed <= 10; seed++ {
			degradedSum += Simulate(cfg, seed).Total()
			cleanSum += Simulate(clean, seed).Total()
		}
		if degradedSum <= cleanSum {
			t.Errorf("%s: mean degraded overhead %.0f not above clean %.0f", m, degradedSum/10, cleanSum/10)
		}
	}
}

// TestCorruptionForcesFallback drives corruption hard enough that some
// restart discovers a torn generation and falls back.
func TestCorruptionForcesFallback(t *testing.T) {
	faults := faultinject.Config{CorruptProb: 0.5}
	found := false
	for seed := uint64(1); seed <= 30 && !found; seed++ {
		cfg := Config{Model: ModelP2, Config: platform.Config{App: failApp, System: failure.Titan, Faults: faults}}
		r := Simulate(cfg, seed)
		found = r.CorruptRestarts > 0
	}
	if !found {
		t.Fatal("no restart ever discovered a corrupt generation at CorruptProb=0.5")
	}
}

// TestPanickingRunBecomesFailedRun plants a crashing run in the middle of
// a sweep and checks the sweep still completes, with the failure ledgered
// against the exact seed.
func TestPanickingRunBecomesFailedRun(t *testing.T) {
	cfg := Config{Model: ModelB, Config: platform.Config{App: smallApp, System: quietSystem}}
	badSeed := RunSeed(42, 3)
	orig := simulateRun
	simulateRun = func(c Config, seed uint64) stats.RunResult {
		if seed == badSeed {
			panic("planted crash")
		}
		return orig(c, seed)
	}
	defer func() { simulateRun = orig }()
	agg := SimulateNWorkers(cfg, 8, 42, 4)
	if agg.N() != 7 {
		t.Fatalf("completed runs = %d, want 7", agg.N())
	}
	failed := agg.Failed()
	if len(failed) != 1 {
		t.Fatalf("failed ledger has %d entries, want 1", len(failed))
	}
	f := failed[0]
	if f.Seed != badSeed || !strings.Contains(f.Err, "planted crash") || !strings.Contains(f.Config, "model=B") {
		t.Fatalf("failed run misreported: %+v", f)
	}
}

// TestWatchdogedRunBecomesFailedRun wires the two safety rails together:
// a livelocked simulation trips the sim watchdog, and the per-worker
// recover converts that panic into a ledger entry — naming the stuck
// process — instead of hanging or killing the sweep.
func TestWatchdogedRunBecomesFailedRun(t *testing.T) {
	cfg := Config{Model: ModelB, Config: platform.Config{App: smallApp, System: quietSystem}}
	orig := simulateRun
	simulateRun = func(c Config, seed uint64) stats.RunResult {
		if seed == RunSeed(7, 0) {
			panic(&sim.WatchdogError{Reason: "event limit", Events: 101, Proc: `"compute" (proc 1)`})
		}
		return orig(c, seed)
	}
	defer func() { simulateRun = orig }()
	agg := SimulateNWorkers(cfg, 2, 7, 1)
	if agg.N() != 1 || len(agg.Failed()) != 1 {
		t.Fatalf("runs=%d failed=%d, want 1/1", agg.N(), len(agg.Failed()))
	}
	if err := agg.Failed()[0].Err; !strings.Contains(err, "watchdog") || !strings.Contains(err, "compute") {
		t.Fatalf("watchdog diagnostic lost in the ledger: %q", err)
	}
}
