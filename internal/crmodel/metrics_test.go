package crmodel

import (
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/platform"
	"pckpt/internal/trace"
)

// TestUnmeteredHotPathZeroAllocs guards the subsystem's core promise:
// with metering and tracing both off (nil registry → nil handles, nil
// recorder), the per-cycle instrumentation sites allocate nothing.
func TestUnmeteredHotPathZeroAllocs(t *testing.T) {
	a := &appSim{} // zero value: cfg.Trace nil, every met handle nil
	allocs := testing.AllocsPerRun(1000, func() {
		a.trace(trace.BBWrite, -1, "")
		a.met.bbWrite.Observe(135.5)
		a.met.commitLat.Observe(2.25)
		a.met.pfsGBs.Observe(2400)
		a.met.leadConsumed.Observe(21)
		a.met.drainDepth.Set(10, 1)
		a.met.vulnNodes.Set(10, 2)
		a.met.bbAborted.Inc()
		a.met.episodesAbandoned.Inc()
	})
	if allocs != 0 {
		t.Fatalf("unmetered instrumentation sites allocate %.1f per cycle, want 0", allocs)
	}
}

func TestSimulateNMeteredMatchesUnmetered(t *testing.T) {
	cfg := Config{Model: ModelP2, Config: platform.Config{App: failApp, System: failure.Titan}}
	plain := SimulateNWorkers(cfg, 8, 17, 4)
	metered, snap := SimulateNMetered(cfg, 8, 17, 4)
	for i := range plain.Runs() {
		if plain.Runs()[i] != metered.Runs()[i] {
			t.Fatalf("run %d diverged under metering", i)
		}
	}
	if snap.Empty() {
		t.Fatal("metered pool returned an empty snapshot")
	}
	// Merging is deterministic, so a second metered pool must agree.
	_, snap2 := SimulateNMetered(cfg, 8, 17, 2)
	if len(snap.Histograms) != len(snap2.Histograms) {
		t.Fatalf("snapshot shape depends on worker count: %d vs %d histograms",
			len(snap.Histograms), len(snap2.Histograms))
	}
	// Every handled failure observes exactly one recovery span.
	failures := 0
	for _, r := range metered.Runs() {
		failures += r.Failures
	}
	if rec := snap.Histograms["sim.P2.recovery_seconds"]; int(rec.Count) != failures {
		t.Fatalf("recovery_seconds count %d != %d failures", int(rec.Count), failures)
	}
	if bw := snap.Histograms["sim.P2.bb_write_seconds"]; bw.Count == 0 {
		t.Fatal("no BB write spans recorded")
	}
	if g, ok := snap.Gauges["sim.P2.drain_queue_depth"]; !ok || g.Max < 1 {
		t.Fatalf("drain queue depth gauge missing or flat: %+v", g)
	}
}

func TestSimulateNMeteredZeroRuns(t *testing.T) {
	agg, snap := SimulateNMetered(Config{}, 0, 1, 1)
	if agg.N() != 0 || !snap.Empty() {
		t.Fatalf("zero runs: n=%d empty=%v", agg.N(), snap.Empty())
	}
}
