package crmodel

import (
	"math"
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/iomodel"
	"pckpt/internal/lm"
	"pckpt/internal/pckpt"
	"pckpt/internal/platform"
	"pckpt/internal/workload"
)

// TestEpisodeTimingMatchesProtocol cross-checks the two granularities of
// the p-ckpt implementation (DESIGN.md key decision 1): the closed-form
// episode pricing used by the application-level C/R models must equal the
// makespan of the node-level message-passing protocol in
// internal/pckpt, for matching configurations.
func TestEpisodeTimingMatchesProtocol(t *testing.T) {
	io := iomodel.New(iomodel.DefaultSummit())
	cases := []struct {
		name       string
		nodes      int
		perNodeGB  float64
		vulnerable int
	}{
		{"one-vulnerable-small", 64, 5, 1},
		{"one-vulnerable-large", 505, 40, 1},
		{"three-vulnerable", 128, 20, 3},
		{"many-vulnerable", 256, 10, 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Node-level protocol: all predictions simultaneous with
			// ample lead, forcing the pure p-ckpt path.
			cfg := pckpt.Config{Nodes: c.nodes, PerNodeGB: c.perNodeGB, IO: io, LM: lm.Default(), Hybrid: false}
			var preds []pckpt.Prediction
			for i := 0; i < c.vulnerable; i++ {
				preds = append(preds, pckpt.Prediction{Node: i, At: 0, Lead: 1e6})
			}
			res := pckpt.Run(cfg, preds)

			// Application-level closed form: phase 1 serializes the
			// vulnerable nodes' uncontended writes; phase 2 is the
			// healthy nodes' aggregate write. This is exactly what
			// appSim.pckptEpisode charges the application.
			phase1 := float64(c.vulnerable) * io.SingleNodePFSWriteTime(c.perNodeGB)
			phase2 := io.PFSWriteTime(c.nodes-c.vulnerable, c.perNodeGB)
			if rel := math.Abs(res.Phase1End-phase1) / phase1; rel > 1e-9 {
				t.Fatalf("phase-1 mismatch: protocol %.4f vs closed form %.4f", res.Phase1End, phase1)
			}
			if want := phase1 + phase2; math.Abs(res.Phase2End-want)/want > 1e-9 {
				t.Fatalf("episode makespan mismatch: protocol %.4f vs closed form %.4f", res.Phase2End, want)
			}
		})
	}
}

// TestEpisodeBlockedTimeMatchesProtocol verifies the same equivalence
// through the full C/R simulation: a single prediction on an otherwise
// failure-free system must charge the application exactly the protocol's
// episode makespan plus its periodic checkpoints.
func TestEpisodeBlockedTimeMatchesProtocol(t *testing.T) {
	io := iomodel.New(iomodel.DefaultSummit())
	app := workload.App{Name: "probe", Nodes: 100, TotalCkptGB: 1000, ComputeHours: 10}

	// A system quiet enough that the predictor's spurious stream is the
	// only activity: with FP>0 and a huge MTBF, real failures never
	// arrive but spurious predictions (which trigger full episodes) do.
	quiet := failure.System{Name: "quiet", Shape: 1, ScaleHours: 200, Nodes: app.Nodes}
	cfg := Config{Model: ModelP1, Config: platform.Config{App: app, System: quiet, FNRate: 1e-9, FPRate: 0.9}}

	perNode := app.PerNodeGB()
	episode := io.SingleNodePFSWriteTime(perNode) + io.PFSWriteTime(app.Nodes-1, perNode)
	tBB := io.BBWriteTime(perNode)

	for seed := uint64(0); seed < 30; seed++ {
		r := Simulate(cfg, seed)
		if r.Failures > 0 || r.ProactiveCkpts == 0 {
			continue // want a failure-free run that still saw spurious episodes
		}
		// Checkpoint overhead decomposes exactly into periodic BB writes
		// plus whole episodes (no failures interrupt anything).
		got := r.Overheads.Checkpoint - float64(r.Checkpoints)*tBB
		episodes := got / episode
		if math.Abs(episodes-math.Round(episodes)) > 1e-6 || math.Round(episodes) != float64(r.ProactiveCkpts) {
			t.Fatalf("seed %d: episode-blocked time %.4f is not %d × %.4f", seed, got, r.ProactiveCkpts, episode)
		}
		return
	}
	t.Fatal("no suitable failure-free run with spurious episodes found")
}
