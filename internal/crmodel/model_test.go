package crmodel

import (
	"math"
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/lm"
	"pckpt/internal/platform"
	"pckpt/internal/workload"
)

func TestModelStrings(t *testing.T) {
	want := map[Model]string{ModelB: "B", ModelM1: "M1", ModelM2: "M2", ModelP1: "P1", ModelP2: "P2"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
	if len(Models()) != 5 {
		t.Fatalf("Models() has %d entries", len(Models()))
	}
}

func TestModelByName(t *testing.T) {
	for _, m := range Models() {
		got, err := ModelByName(m.String())
		if err != nil || got != m {
			t.Errorf("ModelByName(%s) = %v, %v", m, got, err)
		}
	}
	if _, err := ModelByName("Z9"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestModelCapabilities(t *testing.T) {
	cases := []struct {
		m                          Model
		pred, lm, pckpt, safeguard bool
	}{
		{ModelB, false, false, false, false},
		{ModelM1, true, false, false, true},
		{ModelM2, true, true, false, false},
		{ModelP1, true, false, true, false},
		{ModelP2, true, true, true, false},
	}
	for _, c := range cases {
		if c.m.UsesPrediction() != c.pred || c.m.UsesLM() != c.lm ||
			c.m.UsesPckpt() != c.pckpt || c.m.UsesSafeguard() != c.safeguard {
			t.Errorf("capabilities wrong for %s", c.m)
		}
	}
}

func testApp(t *testing.T, name string) workload.App {
	t.Helper()
	a, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Model: ModelP2, Config: platform.Config{App: testApp(t, "POP"), System: failure.Titan}}
	d := cfg.withDefaults()
	if d.IO == nil || d.Leads == nil || d.LeadScale != 1 {
		t.Fatal("defaults not applied")
	}
	if d.FNRate != failure.DefaultFNRate || d.FPRate != failure.DefaultFPRate {
		t.Fatalf("predictor defaults wrong: fn=%g fp=%g", d.FNRate, d.FPRate)
	}
	if d.LM != lm.Default() {
		t.Fatal("LM default not applied")
	}
}

func TestPerfectPredictorOverrides(t *testing.T) {
	cfg := Config{Model: ModelP1, Config: platform.Config{App: testApp(t, "POP"), System: failure.Titan, PerfectPredictor: true}}
	d := cfg.withDefaults()
	if d.FNRate != 0 || d.FPRate != 0 {
		t.Fatalf("perfect predictor not honoured: fn=%g fp=%g", d.FNRate, d.FPRate)
	}
}

func TestConfigValidate(t *testing.T) {
	ok := Config{Model: ModelP2, Config: platform.Config{App: testApp(t, "XGC"), System: failure.Titan}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Model: ModelP2, Config: platform.Config{App: workload.App{}, System: failure.Titan}},
		{Model: ModelP2, Config: platform.Config{App: testApp(t, "XGC"), System: failure.System{}}},
		{Model: ModelP2, Config: platform.Config{App: testApp(t, "XGC"), System: failure.Titan, LeadScale: -1}},
		{Model: ModelP2, Config: platform.Config{App: testApp(t, "XGC"), System: failure.Titan, FNRate: 2}},
		{Model: ModelP2, Config: platform.Config{App: testApp(t, "XGC"), System: failure.Titan, FPRate: 1}},
		{Model: 99, Config: platform.Config{App: testApp(t, "XGC"), System: failure.Titan}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestThetaMatchesLMModel(t *testing.T) {
	app := testApp(t, "CHIMERA")
	cfg := Config{Model: ModelP2, Config: platform.Config{App: app, System: failure.Titan}}
	want := lm.Default().Theta(app.PerNodeGB())
	if got := cfg.Theta(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Theta = %g, want %g", got, want)
	}
	// CHIMERA's θ is RAM-capped at ≈41 s — the calibration anchor.
	if got := cfg.Theta(); got < 40.5 || got > 41.5 {
		t.Fatalf("CHIMERA θ = %.2f, want ≈41", got)
	}
}

func TestSigmaZeroWithoutLM(t *testing.T) {
	app := testApp(t, "CHIMERA")
	for _, m := range []Model{ModelB, ModelM1, ModelP1} {
		if s := (Config{Model: m, Config: platform.Config{App: app, System: failure.Titan}}).Sigma(); s != 0 {
			t.Errorf("%s sigma = %g, want 0", m, s)
		}
	}
}

func TestSigmaUsesBaselineRecall(t *testing.T) {
	app := testApp(t, "CHIMERA")
	base := Config{Model: ModelP2, Config: platform.Config{App: app, System: failure.Titan}}
	moreFN := base
	moreFN.FNRate = 0.4
	// Eq. (2) ignores the configured accuracy (Observation 9): σ must not
	// change when the actual FN rate does.
	if a, b := base.Sigma(), moreFN.Sigma(); a != b {
		t.Fatalf("sigma changed with FN rate: %g vs %g", a, b)
	}
	if s := base.Sigma(); s < 0.40 || s < 0 || s > 0.60 {
		t.Fatalf("CHIMERA σ = %.3f, want ≈0.47", s)
	}
}

func TestSigmaScalesWithLeads(t *testing.T) {
	app := testApp(t, "CHIMERA")
	lo := Config{Model: ModelP2, Config: platform.Config{App: app, System: failure.Titan, LeadScale: 0.5}}
	hi := Config{Model: ModelP2, Config: platform.Config{App: app, System: failure.Titan, LeadScale: 1.5}}
	if lo.Sigma() >= hi.Sigma() {
		t.Fatalf("sigma not increasing with lead scale: %g vs %g", lo.Sigma(), hi.Sigma())
	}
}

func TestAccuracyAwareSigma(t *testing.T) {
	app := testApp(t, "CHIMERA")
	published := Config{Model: ModelP2, Config: platform.Config{App: app, System: failure.Titan, FNRate: 0.4}}
	aware := published
	aware.AccuracyAwareSigma = true
	// The published σ ignores the degraded recall; the accuracy-aware
	// variant must shrink σ proportionally: (1−0.4)/(1−0.125).
	ratio := aware.Sigma() / published.Sigma()
	want := (1 - 0.4) / (1 - failure.DefaultFNRate)
	if math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("accuracy-aware σ ratio %.4f, want %.4f", ratio, want)
	}
	// At the baseline FN rate the two variants agree.
	base := Config{Model: ModelP2, Config: platform.Config{App: app, System: failure.Titan}}
	baseAware := base
	baseAware.AccuracyAwareSigma = true
	if base.Sigma() != baseAware.Sigma() {
		t.Fatal("variants must agree at the baseline FN rate")
	}
}
