package crmodel

import (
	"fmt"
	"math"

	"pckpt/internal/cluster"
	"pckpt/internal/failure"
	"pckpt/internal/faultinject"
	"pckpt/internal/oci"
	"pckpt/internal/pckpt"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/rng"
	"pckpt/internal/sim"
	"pckpt/internal/stats"
	"pckpt/internal/trace"
)

// appSim is the state of one simulation run: a single application process
// executing compute/checkpoint cycles on the DES, an injector process
// delivering the failure/prediction stream, and the strategy of the
// configured C/R model (internal/policy) deciding every proactive
// reaction against the shared lifecycle state machine.
type appSim struct {
	cfg Config
	pol policy.Policy
	// pricing derives the episode's phase-1/phase-2 transfer prices from
	// the shared pckpt.EpisodePricing, so every tier prices the protocol
	// with the same float operations (bit-identity across tiers).
	pricing pckpt.EpisodePricing
	env     *sim.Env
	app     *sim.Proc
	stream  failure.EventSource
	est     *failure.RateEstimator
	cl      *cluster.Cluster
	// inj is the degraded-platform fault plan (nil = perfect platform;
	// every hook on nil is a no-op).
	inj *faultinject.Injector

	// plat holds the precomputed platform quantities (seconds / GB),
	// derived once by internal/platform; sigma is Eq. (2)'s σ gated on
	// the model's LM capability (0 for B/M1/P1).
	plat  platform.Derived
	sigma float64

	// Dynamic state. The C/R lifecycle (fail epochs, drains, episodes,
	// migrations, prediction/mitigation ledgers) lives in st; only the
	// application-process state is tier-local.
	progress float64 // completed computation, seconds
	curOCI   float64
	st       *policy.State

	// Event plumbing: the injector appends, the app drains on interrupt.
	pending      []failure.Event
	safeguarding bool // M1 safeguard in flight
	// vulnBuf is the reused episode-width scratch buffer (metered runs
	// only): cluster.AppendVulnerable fills it without allocating.
	vulnBuf []int

	met runMetrics
	res stats.RunResult
}

// trace emits a timeline event when tracing is enabled.
func (a *appSim) trace(kind trace.Kind, node int, detail string) {
	if a.cfg.Trace == nil {
		return
	}
	a.cfg.Trace.Record(trace.Event{
		T:        a.env.Now(),
		Kind:     kind,
		Node:     node,
		Progress: a.progress,
		Detail:   detail,
	})
}

// maxRunEvents is the per-run watchdog ceiling: vastly above what any
// real configuration dispatches, low enough that a livelocked run dies
// in seconds instead of hanging its sweep worker forever.
const maxRunEvents = 100_000_000

// Simulate executes one run and returns its accounting. Deterministic in
// (cfg, seed).
func Simulate(cfg Config, seed uint64) stats.RunResult {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	src := rng.New(seed)
	a := &appSim{
		cfg:   cfg,
		pol:   policy.For(cfg.Model),
		env:   sim.NewEnv(),
		est:   failure.NewRateEstimator(cfg.System.JobFailureRate(cfg.App.Nodes)),
		cl:    cluster.New(cfg.App.Nodes, cfg.SpareLimit()),
		plat:  cfg.Derive(),
		sigma: cfg.Sigma(),
		st:    policy.NewState(),
	}
	a.pricing = pckpt.NewEpisodePricing(cfg.IO, a.plat.PerNodeGB)
	a.met = newRunMetrics(cfg.Metrics, cfg.Model)
	if cfg.Metrics != nil {
		a.observeCluster()
	}
	a.stream = failure.NewSource(cfg.StreamConfig(cfg.Metrics), src.Split(1))
	// The fault plan draws from its own named substream: with every rate
	// at zero it consumes no draws, so the run is bit-identical to one
	// with injection disabled.
	a.inj = faultinject.New(cfg.Faults, src.Split(faultinject.StreamKey), cfg.Metrics)
	// A run that stops making progress (however it got there) must fail
	// fast with a diagnostic, not hang a sweep: real runs dispatch
	// several orders of magnitude fewer events than this ceiling.
	a.env.SetWatchdog(maxRunEvents, 0)

	a.app = a.env.Spawn("app", a.run)
	a.env.Spawn("injector", a.inject)
	a.env.RunAll()
	a.env.Release()
	return a.res
}

// refreshOCI re-derives the checkpoint interval from the current failure
// rate estimate, per Eq. (1) (σ=0) or Eq. (2).
func (a *appSim) refreshOCI() {
	rate := a.est.Rate(a.env.Now())
	a.curOCI = oci.FromJobRate(a.plat.BBWrite, rate, a.sigma)
}

// run is the application process: compute OCI seconds, checkpoint to BB,
// repeat until the required computation completes.
func (a *appSim) run(p *sim.Proc) {
	for a.progress < a.plat.ComputeSeconds && !a.res.Truncated {
		a.computeChunk(p)
		if a.progress >= a.plat.ComputeSeconds || a.res.Truncated {
			break
		}
		a.bbCheckpoint(p)
	}
	a.res.WallSeconds = a.env.Now()
	if a.res.Truncated {
		a.trace(trace.Truncated, -1, "spare pool exhausted")
		return
	}
	a.trace(trace.Complete, -1, "")
}

// computeChunk advances the application by one checkpoint interval,
// absorbing interrupts (failures roll progress back; proactive actions
// block inside the handlers).
func (a *appSim) computeChunk(p *sim.Proc) {
	a.refreshOCI()
	target := math.Min(a.progress+a.curOCI, a.plat.ComputeSeconds)
	// Guard the Sprintf, not just the Record: the hot path must not
	// format (or allocate) when tracing is off.
	if a.cfg.Trace != nil {
		a.trace(trace.CycleStart, -1, fmt.Sprintf("interval=%.0fs", target-a.progress))
	}
	// The float sums can stall a hair short of the target once simulated
	// time can no longer resolve the residual (the measured wait recovers
	// less than the requested delay at large absolute times); treat
	// anything below a microsecond as done and snap, as the node-granular
	// tier does. Without the snap, a rollback that lands progress just
	// short of ComputeSeconds livelocks the run: compute 0s, checkpoint,
	// forever.
	for target-a.progress > 1e-6 {
		start := a.env.Now()
		err := p.Wait(target - a.progress)
		a.progress += a.env.Now() - start
		if err == nil {
			break
		}
		a.handleEvents(p)
		if a.res.Truncated {
			return
		}
		if a.st.TakeRescheduled() {
			// A proactive action committed a full checkpoint; re-base
			// the periodic schedule on the fresh interval (the paper's
			// adaptive checkpoint schedule).
			a.refreshOCI()
			target = math.Min(a.progress+a.curOCI, a.plat.ComputeSeconds)
		}
	}
	a.progress = target
}

// bbCheckpoint performs the synchronous burst-buffer write of a periodic
// checkpoint and launches the asynchronous PFS drain.
func (a *appSim) bbCheckpoint(p *sim.Proc) {
	began := a.env.Now()
	if !a.blockedWait(p, a.plat.BBWrite, &a.res.Overheads.Checkpoint) {
		// A failure voided the write and rolled progress back; resume
		// computing, the next cycle will checkpoint the redone state.
		a.met.bbAborted.Inc()
		return
	}
	a.met.bbWrite.Observe(a.env.Now() - began)
	if a.inj.BBWriteFails() {
		// The write occupied the BBs for its full duration and then
		// failed: nothing committed, no drain; the next periodic cycle
		// checkpoints the (re)computed state.
		a.res.BBWriteFailures++
		a.trace(trace.BBWrite, -1, "write failed (injected)")
		return
	}
	a.res.Checkpoints++
	a.st.CommitBB(a.progress)
	if a.inj.CorruptCommit() {
		// Silently torn: the job believes this generation is good; a
		// restart that reads it will discover otherwise.
		a.st.MarkCorrupt(a.progress)
	}
	a.trace(trace.BBWrite, -1, "")
	a.cl.RecordBBCheckpointAll(a.progress)
	captured := a.progress
	gen, depth := a.st.BeginDrain()
	a.met.drainDepth.Set(a.env.Now(), float64(depth))
	a.env.At(a.plat.Drain, func() {
		depth, current := a.st.FinishDrain(gen)
		a.met.drainDepth.Set(a.env.Now(), float64(depth))
		// The drain completes unless a newer checkpoint superseded it
		// (each BB write restarts the drain of the newest data).
		if current {
			if a.inj.PFSWriteFails() {
				// The drain's PFS write failed: the BB copy stands, but
				// the generation never lands on the PFS.
				a.res.PFSWriteFailures++
				a.trace(trace.DrainDone, -1, "drain failed (injected)")
				return
			}
			a.commitFullPFS(captured)
			a.trace(trace.DrainDone, -1, "")
		}
	})
}

// blockedWait blocks the application for dur seconds, accounting the time
// into bucket and processing any events that interrupt it. It returns
// false if a failure voided the activity before dur fully elapsed, true
// on completion.
func (a *appSim) blockedWait(p *sim.Proc, dur float64, bucket *float64) bool {
	epoch := a.st.Epoch()
	remaining := dur
	for remaining > 0 {
		start := a.env.Now()
		err := p.Wait(remaining)
		elapsed := a.env.Now() - start
		remaining -= elapsed
		*bucket += elapsed
		if err == nil {
			return true
		}
		a.handleEvents(p)
		if a.st.Epoch() != epoch {
			return false
		}
	}
	return true
}

// handleEvents drains the pending queue. A truncated run stops draining:
// the job is dead, the remaining events go nowhere.
func (a *appSim) handleEvents(p *sim.Proc) {
	for len(a.pending) > 0 && !a.res.Truncated {
		ev := a.pending[0]
		a.pending = a.pending[1:]
		switch ev.Kind {
		case failure.KindPrediction, failure.KindSpurious:
			a.onPrediction(p, ev)
		case failure.KindFailure:
			a.onFailure(p, ev)
		}
	}
}

// onPrediction records the prediction, marks the node vulnerable, and
// executes whatever proactive action the model's strategy decides.
func (a *appSim) onPrediction(p *sim.Proc, ev failure.Event) {
	if ev.Kind == failure.KindPrediction {
		a.st.RecordPrediction(ev.ID, policy.Prediction{Node: ev.Node, FailAt: ev.FailTime, Lead: ev.Lead})
		if a.cfg.Trace != nil {
			a.trace(trace.Prediction, ev.Node, fmt.Sprintf("lead=%.1fs", ev.Lead))
		}
	} else if a.cfg.Trace != nil {
		a.trace(trace.SpuriousPrediction, ev.Node, fmt.Sprintf("lead=%.1fs", ev.Lead))
	}
	if err := a.cl.MarkVulnerable(ev.Node, ev.FailTime); err == nil {
		// Clear the vulnerable mark once the predicted failure time has
		// passed without a newer prediction superseding it (spurious
		// predictions, and predictions the model takes no action on,
		// would otherwise pin the node vulnerable forever).
		failAt := ev.FailTime
		node := ev.Node
		a.env.At(math.Max(failAt-a.env.Now(), 0), func() {
			n := a.cl.Node(node)
			if n.State == cluster.Vulnerable && n.PredictedFailAt == failAt {
				a.cl.MarkHealthy(node)
			}
		})
	}
	switch a.pol.OnPrediction(a.st, ev.Node, ev.Lead, a.plat.Theta) {
	case policy.ActJoinEpisode:
		// Phase 1 in progress: the new vulnerable node joins the
		// node-local priority queue (lower lead = higher priority).
		a.st.Episode().Q.Push(ev.FailTime, ev)
	case policy.ActMigrate:
		a.startMigration(ev)
	case policy.ActStartEpisode:
		a.pckptEpisode(p, ev)
	case policy.ActSafeguard:
		a.safeguard(p)
	}
}

// startMigration begins a live migration. The application keeps running;
// completion is a scheduled callback. Lead ≥ θ guarantees completion
// before the failure unless a p-ckpt episode aborts the migration first.
func (a *appSim) startMigration(ev failure.Event) {
	m := a.st.StartMigration(ev)
	if a.cfg.Trace != nil {
		a.trace(trace.MigrationStart, ev.Node, fmt.Sprintf("theta=%.1fs", a.plat.Theta))
	}
	a.cl.MarkMigrating(ev.Node)
	a.env.At(a.plat.Theta, func() {
		if !a.st.FinishMigration(m) {
			return
		}
		a.res.Migrations++
		a.trace(trace.MigrationDone, ev.Node, "")
		// The application dilates slightly while migrating.
		a.res.Overheads.Checkpoint += a.cfg.LM.DilationSeconds(a.plat.PerNodeGB)
		if a.cl.Node(ev.Node).State == cluster.Migrating {
			a.cl.MarkHealthy(ev.Node)
		}
		if ev.Kind == failure.KindPrediction {
			a.st.MarkAvoided(ev.ID)
			a.res.Avoided++
			a.st.ForgetPrediction(ev.ID)
		}
	})
}

// pckptEpisode runs one coordinated prioritized checkpoint: phase 1
// serves vulnerable nodes serially by lead-time priority with uncontended
// PFS access; phase 2 commits the remaining nodes at aggregate bandwidth.
// The application is blocked throughout (healthy nodes wait). A failure
// during the episode abandons the remainder.
func (a *appSim) pckptEpisode(p *sim.Proc, first failure.Event) {
	a.res.ProactiveCkpts++
	a.trace(trace.EpisodeStart, first.Node, "")
	epBegin := a.env.Now()
	ep := a.st.BeginEpisode(a.progress)
	defer a.st.EndEpisode()
	ep.Q.Push(first.FailTime, first)
	// A p-ckpt request supersedes in-flight migrations (Fig. 5): abort
	// them and requeue their nodes as vulnerable.
	a.st.AbortMigrations(func(ev failure.Event) {
		a.res.AbortedMigrations++
		a.trace(trace.MigrationAborted, ev.Node, "superseded by p-ckpt")
		if a.cl.Node(ev.Node).State == cluster.Migrating {
			a.cl.AbortMigration(ev.Node, ev.FailTime)
		}
		ep.Q.Push(ev.FailTime, ev)
	})
	if a.cfg.Metrics != nil {
		a.vulnBuf = a.cl.AppendVulnerable(a.vulnBuf[:0])
		a.met.episodeWidth.Observe(float64(len(a.vulnBuf)))
	}
	for ep.Q.Len() > 0 && !ep.Abandoned {
		_, ev := ep.Q.Pop()
		if !a.blockedWait(p, a.pricing.VulnerableWrite, &a.res.Overheads.Checkpoint) {
			break
		}
		if a.inj.PFSWriteFails() {
			// The vulnerable node's prioritized write tore. If the
			// remaining lead time still covers another attempt, the node
			// re-enters the lead-time priority queue; otherwise its
			// prediction goes unserved.
			a.res.PFSWriteFailures++
			if ev.Kind == failure.KindPrediction && a.env.Now()+a.pricing.VulnerableWrite <= ev.FailTime {
				ep.Q.Push(ev.FailTime, ev)
			}
			continue
		}
		ep.Committed++
		a.met.commitLat.Observe(a.env.Now() - epBegin)
		a.trace(trace.VulnerableCommit, ev.Node, "")
		a.cl.RecordPFSCheckpoint(ev.Node, ep.StartProgress)
		if a.cl.Node(ev.Node).State == cluster.Vulnerable {
			a.cl.MarkHealthy(ev.Node)
		}
		if ev.Kind == failure.KindPrediction && a.env.Now() <= ev.FailTime {
			// The vulnerable node's state reached the PFS before its
			// failure: the failure is mitigated.
			a.st.Mitigate(ev.ID, ep.StartProgress)
			a.met.leadConsumed.Observe(a.env.Now() - (ev.FailTime - ev.Lead))
			a.met.leadMargin.Observe(ev.FailTime - a.env.Now())
		}
	}
	if ep.Abandoned {
		a.met.episodesAbandoned.Inc()
		return
	}
	// Phase 2: pfs-commit broadcast; healthy nodes write together.
	healthy := a.plat.Nodes - ep.Committed
	if healthy > 0 {
		tr := a.pricing.Phase2Transfer(healthy)
		if !a.blockedWait(p, tr.Seconds, &a.res.Overheads.Checkpoint) {
			a.met.episodesAbandoned.Inc()
			return
		}
		a.met.pfsGBs.Observe(tr.GBs)
	}
	if a.inj.PFSWriteFails() {
		// The phase-2 collective write failed: the episode's full
		// checkpoint never commits (phase-1 mitigations stand — those
		// nodes' states did reach the PFS).
		a.res.PFSWriteFailures++
	} else {
		a.commitFullPFS(ep.StartProgress)
		if a.inj.CorruptCommit() {
			a.st.MarkCorrupt(ep.StartProgress)
		}
		a.st.MarkRescheduled()
	}
	a.met.episodeDur.Observe(a.env.Now() - epBegin)
	if a.cfg.Trace != nil {
		a.trace(trace.EpisodeEnd, -1, fmt.Sprintf("blocked=%.1fs committed=%d", a.env.Now()-epBegin, ep.Committed))
	}
}

// safeguard runs M1's just-in-time checkpoint: every node writes to the
// PFS synchronously, racing the predicted failure.
func (a *appSim) safeguard(p *sim.Proc) {
	if a.safeguarding {
		return // the in-flight safeguard covers this prediction too
	}
	a.safeguarding = true
	defer func() { a.safeguarding = false }()
	a.res.ProactiveCkpts++
	a.trace(trace.SafeguardStart, -1, "")
	began := a.env.Now()
	startProgress := a.progress
	if !a.blockedWait(p, a.plat.FullPFSWrite, &a.res.Overheads.Checkpoint) {
		return // the failure won the race (or rolled us back)
	}
	if a.inj.PFSWriteFails() {
		// The safeguard's collective write failed after blocking the
		// application for its full duration: nothing committed, so the
		// pending predictions stay unmitigated.
		a.res.PFSWriteFailures++
		a.trace(trace.SafeguardEnd, -1, "write failed (injected)")
		return
	}
	a.commitFullPFS(startProgress)
	if a.inj.CorruptCommit() {
		a.st.MarkCorrupt(startProgress)
	}
	a.st.MarkRescheduled()
	a.trace(trace.SafeguardEnd, -1, "")
	now := a.env.Now()
	a.met.safeguardDur.Observe(now - began)
	if a.plat.FullPFSWrite > 0 {
		a.met.pfsGBs.Observe(float64(a.plat.Nodes) * a.plat.PerNodeGB / a.plat.FullPFSWrite)
	}
	a.st.EachPrediction(func(id int64, pi policy.Prediction) {
		if pi.FailAt >= now {
			// The safeguard committed everyone's state before this
			// pending failure: mitigated.
			a.st.Mitigate(id, startProgress)
			a.met.leadConsumed.Observe(now - (pi.FailAt - pi.Lead))
			a.met.leadMargin.Observe(pi.FailAt - now)
		}
	})
}

// commitFullPFS records a full-application checkpoint at progress q as
// resident on the PFS.
func (a *appSim) commitFullPFS(q float64) {
	if a.st.CommitPFS(q) {
		a.cl.RecordPFSCheckpointAll(q)
	}
}

// onFailure handles a failure striking node ev.Node: classify it
// (mitigated by a proactive checkpoint, or unhandled), roll progress
// back, perform recovery, replace the node.
func (a *appSim) onFailure(p *sim.Proc, ev failure.Event) {
	a.res.Failures++
	if ev.Lead > 0 {
		a.res.Predicted++
	}
	out := a.pol.OnFailure(a.st, ev)
	if out.MigrationAborted {
		a.res.AbortedMigrations++
	}
	a.cl.Fail(ev.Node)
	if out.Mitigated {
		a.res.Mitigated++
	}
	// Best restart point: the proactive commit that mitigated this
	// failure, or the newest consistent periodic checkpoint — whichever
	// is fresher. On a degraded platform, candidates discovered corrupt
	// at restore time are discarded in favour of older generations.
	q, fullPFSRestore, corrupted := a.st.ResolveRestart(a.cl.RecoverableProgress(ev.Node), out)
	if corrupted > 0 {
		a.res.CorruptRestarts += corrupted
		a.inj.ObserveCorruptRestarts(corrupted)
		// The checkpoint records claiming the discarded generations are
		// lies now; no later restart may try them again.
		a.cl.ClampCheckpoints(q)
	}
	recovery := a.plat.RecoveryBB
	if fullPFSRestore {
		// Recovering from a proactive checkpoint pulls every node's
		// state from the PFS (Sec. II), which is what makes recovery
		// visible in P1's overhead breakdown.
		recovery = a.plat.RecoveryPFS
	}
	loss := 0.0
	if a.progress > q {
		loss = a.progress - q
		a.res.Recompute += loss
		a.progress = q
	}
	a.met.recomputeLoss.Observe(loss)
	if fullPFSRestore && recovery > 0 {
		a.met.pfsGBs.Observe(float64(a.plat.Nodes) * a.plat.PerNodeGB / recovery)
	}
	if a.cfg.Trace != nil {
		outcome := "unhandled"
		if out.Mitigated {
			outcome = "mitigated"
		}
		a.trace(trace.Failure, ev.Node, fmt.Sprintf("%s loss=%.0fs", outcome, loss))
	}
	if err := a.cl.Replace(ev.Node); err != nil {
		// Spare pool exhausted: the resource manager cannot re-host the
		// failed rank, so the failure is job-fatal. The run ends truncated
		// at the current time — no recovery is charged; the unwinding
		// frames (recovery retries of earlier failures included) observe
		// the marker and stop.
		a.res.Truncated = true
		return
	}
	// Recovery: restart as many times as failures force us to. On a
	// degraded platform the restore can stretch further: each corrupt
	// candidate cost a torn read of full restore length before the clean
	// generation was found; a cascade (secondary failure inside the
	// window) voids the partial restore; and a failed restart attempt
	// charges deterministic doubling backoff before the retry.
	began := a.env.Now()
	for i := 0; i < corrupted; i++ {
		for !a.blockedWait(p, recovery, &a.res.Overheads.Recovery) {
			if a.res.Truncated {
				return
			}
		}
	}
	attempt, cascades := 0, 0
	for {
		if strike, frac := a.inj.CascadeRecovery(); strike && cascades < faultinject.MaxCascadeDepth {
			cascades++
			a.res.Cascades++
			for !a.blockedWait(p, frac*recovery, &a.res.Overheads.Recovery) {
				if a.res.Truncated {
					return
				}
			}
			continue
		}
		for !a.blockedWait(p, recovery, &a.res.Overheads.Recovery) {
			if a.res.Truncated {
				return
			}
		}
		fail, backoff := a.inj.RestartAttemptFails(attempt)
		if !fail {
			break
		}
		attempt++
		a.res.RestartRetries++
		if backoff > 0 {
			for !a.blockedWait(p, backoff, &a.res.Overheads.Recovery) {
				if a.res.Truncated {
					return
				}
			}
		}
	}
	if cascades > 0 {
		a.inj.ObserveCascadeDepth(cascades)
	}
	a.met.recoveryDur.Observe(a.env.Now() - began)
	a.trace(trace.RecoveryDone, ev.Node, "")
}

// inject is the injector process: it delivers the event stream to the
// application, skipping failures avoided by completed migrations.
func (a *appSim) inject(p *sim.Proc) {
	for {
		ev := a.stream.Next()
		if !a.app.Alive() {
			return
		}
		if dt := ev.Time - a.env.Now(); dt > 0 {
			if err := p.Wait(dt); err != nil {
				panic(fmt.Sprintf("crmodel: injector interrupted: %v", err))
			}
		}
		if !a.app.Alive() {
			return
		}
		switch ev.Kind {
		case failure.KindFailure:
			if a.st.ConsumeAvoided(ev.ID) {
				continue // live migration emptied the node in time
			}
			a.est.Observe()
		default:
			if !a.cfg.Model.UsesPrediction() {
				continue // model B ignores the predictor entirely
			}
		}
		a.pending = append(a.pending, ev)
		a.app.Interrupt("failure-stream")
	}
}
