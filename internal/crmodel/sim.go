package crmodel

import (
	"fmt"
	"math"

	"pckpt/internal/cluster"
	"pckpt/internal/failure"
	"pckpt/internal/iomodel"
	"pckpt/internal/oci"
	"pckpt/internal/queue"
	"pckpt/internal/rng"
	"pckpt/internal/sim"
	"pckpt/internal/stats"
	"pckpt/internal/trace"
)

// appSim is the state of one simulation run: a single application process
// executing compute/checkpoint cycles on the DES, an injector process
// delivering the failure/prediction stream, and the policy of the
// configured C/R model.
type appSim struct {
	cfg    Config
	io     *iomodel.Model
	env    *sim.Env
	app    *sim.Proc
	stream *failure.Stream
	est    *failure.RateEstimator
	cl     *cluster.Cluster

	// Precomputed platform quantities (seconds / GB).
	total       float64 // required compute seconds
	perNode     float64 // per-node checkpoint footprint, GB
	nodes       int
	tBB         float64 // synchronous BB write
	drainDur    float64 // asynchronous BB→PFS drain
	sigma       float64 // Eq. (2) σ (0 for B/M1/P1)
	theta       float64 // LM lead threshold
	singleWrite float64 // one node's uncontended PFS write (p-ckpt phase 1)
	fullWrite   float64 // all-node contended PFS write (safeguard)
	recoveryBB  float64 // unhandled-failure recovery (BB + replacement PFS read)
	recoveryPFS float64 // mitigated-failure recovery (all nodes from PFS)

	// Dynamic state.
	progress    float64 // completed computation, seconds
	bbProgress  float64 // newest BB-staged coordinated checkpoint (-1 none)
	pfsProgress float64 // newest fully-PFS-resident checkpoint (-1 none)
	drainGen    int
	curOCI      float64

	// Event plumbing: the injector appends, the app drains on interrupt.
	pending []failure.Event
	// failEpoch increments on every failure. A blocking activity (BB
	// write, safeguard, episode write, recovery) that observes the epoch
	// change mid-wait is void: the state it was saving rolled back.
	// A counter (not a flag) so that nested handling — a recovery running
	// inside the interrupted activity's wait — cannot mask the abort.
	failEpoch int
	// rescheduled is raised when a proactive action committed a full
	// checkpoint, so the compute loop re-bases its next periodic one.
	rescheduled bool
	// drainsInFlight counts scheduled BB→PFS drain completions not yet
	// fired (superseded drains count until their callback runs) — the
	// drain queue depth the metrics layer tracks over sim time.
	drainsInFlight int

	predicted    map[int64]predInfo // outstanding true predictions
	mitigatedAt  map[int64]float64  // failure ID → PFS-recoverable progress
	avoided      map[int64]bool     // failure IDs neutralised by LM
	migrations   map[int]*migration // node → in-flight migration
	episode      *episodeState      // non-nil while a p-ckpt episode runs
	safeguarding bool               // M1 safeguard in flight

	met runMetrics
	res stats.RunResult
}

// trace emits a timeline event when tracing is enabled.
func (a *appSim) trace(kind trace.Kind, node int, detail string) {
	if a.cfg.Trace == nil {
		return
	}
	a.cfg.Trace.Record(trace.Event{
		T:        a.env.Now(),
		Kind:     kind,
		Node:     node,
		Progress: a.progress,
		Detail:   detail,
	})
}

type predInfo struct {
	node   int
	failAt float64
	lead   float64
}

type migration struct {
	ev      failure.Event
	aborted bool
}

// episodeState is a live p-ckpt episode: the lead-time priority queue of
// vulnerable nodes plus the progress the episode snapshots.
type episodeState struct {
	q             queue.PQ[failure.Event]
	startProgress float64
	committed     int
	abandoned     bool
}

// Simulate executes one run and returns its accounting. Deterministic in
// (cfg, seed).
func Simulate(cfg Config, seed uint64) stats.RunResult {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	src := rng.New(seed)
	a := &appSim{
		cfg:         cfg,
		io:          cfg.IO,
		env:         sim.NewEnv(),
		est:         failure.NewRateEstimator(cfg.System.JobFailureRate(cfg.App.Nodes)),
		cl:          cluster.New(cfg.App.Nodes, math.MaxInt32),
		total:       cfg.App.ComputeSeconds(),
		perNode:     cfg.App.PerNodeGB(),
		nodes:       cfg.App.Nodes,
		bbProgress:  -1,
		pfsProgress: -1,
		predicted:   make(map[int64]predInfo),
		mitigatedAt: make(map[int64]float64),
		avoided:     make(map[int64]bool),
		migrations:  make(map[int]*migration),
	}
	a.met = newRunMetrics(cfg.Metrics, cfg.Model)
	if cfg.Metrics != nil {
		a.observeCluster()
	}
	a.stream = failure.NewStream(failure.Config{
		System:    cfg.System,
		JobNodes:  cfg.App.Nodes,
		Leads:     cfg.Leads,
		LeadScale: cfg.LeadScale,
		FNRate:    cfg.FNRate,
		FPRate:    cfg.FPRate,
		Metrics:   cfg.Metrics,
	}, src.Split(1))
	a.tBB = a.io.BBWriteTime(a.perNode)
	a.drainDur = a.io.DrainTime(a.nodes, a.perNode)
	a.theta = cfg.LM.Theta(a.perNode)
	a.sigma = cfg.Sigma()
	a.singleWrite = a.io.SingleNodePFSWriteTime(a.perNode)
	a.fullWrite = a.io.PFSWriteTime(a.nodes, a.perNode)
	a.recoveryBB = math.Max(a.io.BBReadTime(a.perNode), a.io.SingleNodePFSReadTime(a.perNode))
	a.recoveryPFS = a.io.PFSReadTime(a.nodes, a.perNode)

	a.app = a.env.Spawn("app", a.run)
	a.env.Spawn("injector", a.inject)
	a.env.RunAll()
	return a.res
}

// refreshOCI re-derives the checkpoint interval from the current failure
// rate estimate, per Eq. (1) (σ=0) or Eq. (2).
func (a *appSim) refreshOCI() {
	rate := a.est.Rate(a.env.Now())
	a.curOCI = oci.FromJobRate(a.tBB, rate, a.sigma)
}

// run is the application process: compute OCI seconds, checkpoint to BB,
// repeat until the required computation completes.
func (a *appSim) run(p *sim.Proc) {
	for a.progress < a.total {
		a.computeChunk(p)
		if a.progress >= a.total {
			break
		}
		a.bbCheckpoint(p)
	}
	a.res.WallSeconds = a.env.Now()
	a.trace(trace.Complete, -1, "")
}

// computeChunk advances the application by one checkpoint interval,
// absorbing interrupts (failures roll progress back; proactive actions
// block inside the handlers).
func (a *appSim) computeChunk(p *sim.Proc) {
	a.refreshOCI()
	target := math.Min(a.progress+a.curOCI, a.total)
	// Guard the Sprintf, not just the Record: the hot path must not
	// format (or allocate) when tracing is off.
	if a.cfg.Trace != nil {
		a.trace(trace.CycleStart, -1, fmt.Sprintf("interval=%.0fs", target-a.progress))
	}
	for a.progress < target {
		start := a.env.Now()
		err := p.Wait(target - a.progress)
		a.progress += a.env.Now() - start
		if err == nil {
			return
		}
		a.handleEvents(p)
		if a.rescheduled {
			// A proactive action committed a full checkpoint; re-base
			// the periodic schedule on the fresh interval (the paper's
			// adaptive checkpoint schedule).
			a.rescheduled = false
			a.refreshOCI()
			target = math.Min(a.progress+a.curOCI, a.total)
		}
	}
}

// bbCheckpoint performs the synchronous burst-buffer write of a periodic
// checkpoint and launches the asynchronous PFS drain.
func (a *appSim) bbCheckpoint(p *sim.Proc) {
	began := a.env.Now()
	if !a.blockedWait(p, a.tBB, &a.res.Overheads.Checkpoint) {
		// A failure voided the write and rolled progress back; resume
		// computing, the next cycle will checkpoint the redone state.
		a.met.bbAborted.Inc()
		return
	}
	a.met.bbWrite.Observe(a.env.Now() - began)
	a.res.Checkpoints++
	a.bbProgress = a.progress
	a.trace(trace.BBWrite, -1, "")
	a.cl.RecordBBCheckpointAll(a.progress)
	a.drainGen++
	gen := a.drainGen
	captured := a.progress
	a.drainsInFlight++
	a.met.drainDepth.Set(a.env.Now(), float64(a.drainsInFlight))
	a.env.At(a.drainDur, func() {
		a.drainsInFlight--
		a.met.drainDepth.Set(a.env.Now(), float64(a.drainsInFlight))
		// The drain completes unless a newer checkpoint superseded it
		// (each BB write restarts the drain of the newest data).
		if gen == a.drainGen {
			a.commitFullPFS(captured)
			a.trace(trace.DrainDone, -1, "")
		}
	})
}

// blockedWait blocks the application for dur seconds, accounting the time
// into bucket and processing any events that interrupt it. It returns
// false if a failure voided the activity before dur fully elapsed, true
// on completion.
func (a *appSim) blockedWait(p *sim.Proc, dur float64, bucket *float64) bool {
	epoch := a.failEpoch
	remaining := dur
	for remaining > 0 {
		start := a.env.Now()
		err := p.Wait(remaining)
		elapsed := a.env.Now() - start
		remaining -= elapsed
		*bucket += elapsed
		if err == nil {
			return true
		}
		a.handleEvents(p)
		if a.failEpoch != epoch {
			return false
		}
	}
	return true
}

// handleEvents drains the pending queue.
func (a *appSim) handleEvents(p *sim.Proc) {
	for len(a.pending) > 0 {
		ev := a.pending[0]
		a.pending = a.pending[1:]
		switch ev.Kind {
		case failure.KindPrediction, failure.KindSpurious:
			a.onPrediction(p, ev)
		case failure.KindFailure:
			a.onFailure(p, ev)
		}
	}
}

// onPrediction applies the model's proactive policy.
func (a *appSim) onPrediction(p *sim.Proc, ev failure.Event) {
	if ev.Kind == failure.KindPrediction {
		a.predicted[ev.ID] = predInfo{node: ev.Node, failAt: ev.FailTime, lead: ev.Lead}
		if a.cfg.Trace != nil {
			a.trace(trace.Prediction, ev.Node, fmt.Sprintf("lead=%.1fs", ev.Lead))
		}
	} else if a.cfg.Trace != nil {
		a.trace(trace.SpuriousPrediction, ev.Node, fmt.Sprintf("lead=%.1fs", ev.Lead))
	}
	if err := a.cl.MarkVulnerable(ev.Node, ev.FailTime); err == nil {
		// Clear the vulnerable mark once the predicted failure time has
		// passed without a newer prediction superseding it (spurious
		// predictions, and predictions the model takes no action on,
		// would otherwise pin the node vulnerable forever).
		failAt := ev.FailTime
		node := ev.Node
		a.env.At(math.Max(failAt-a.env.Now(), 0), func() {
			n := a.cl.Node(node)
			if n.State == cluster.Vulnerable && n.PredictedFailAt == failAt {
				a.cl.MarkHealthy(node)
			}
		})
	}
	switch {
	case a.cfg.Model.usesPckpt():
		if a.episode != nil {
			if !a.episode.abandoned {
				// Phase 1 in progress: the new vulnerable node joins the
				// node-local priority queue (lower lead = higher
				// priority). Abandoned episodes accept no work; the
				// prediction goes unserved, as it would on a real system
				// mid-recovery.
				a.episode.q.Push(ev.FailTime, ev)
			}
			return
		}
		if a.cfg.Model == ModelP2 && ev.Lead >= a.theta && a.migrations[ev.Node] == nil {
			a.startMigration(ev)
			return
		}
		a.pckptEpisode(p, ev)
	case a.cfg.Model.usesLM():
		if ev.Lead >= a.theta && a.migrations[ev.Node] == nil {
			a.startMigration(ev)
		}
		// Insufficient lead: M2 has no fallback; the failure will strike.
	case a.cfg.Model.usesSafeguard():
		a.safeguard(p)
	}
}

// startMigration begins a live migration. The application keeps running;
// completion is a scheduled callback. Lead ≥ θ guarantees completion
// before the failure unless a p-ckpt episode aborts the migration first.
func (a *appSim) startMigration(ev failure.Event) {
	m := &migration{ev: ev}
	a.migrations[ev.Node] = m
	if a.cfg.Trace != nil {
		a.trace(trace.MigrationStart, ev.Node, fmt.Sprintf("theta=%.1fs", a.theta))
	}
	a.cl.MarkMigrating(ev.Node)
	a.env.At(a.theta, func() {
		if m.aborted {
			return
		}
		delete(a.migrations, ev.Node)
		a.res.Migrations++
		a.trace(trace.MigrationDone, ev.Node, "")
		// The application dilates slightly while migrating.
		a.res.Overheads.Checkpoint += a.cfg.LM.DilationSeconds(a.perNode)
		if a.cl.Node(ev.Node).State == cluster.Migrating {
			a.cl.MarkHealthy(ev.Node)
		}
		if ev.Kind == failure.KindPrediction {
			a.avoided[ev.ID] = true
			a.res.Avoided++
			delete(a.predicted, ev.ID)
		}
	})
}

// abortMigrations cancels every in-flight migration (a p-ckpt request
// supersedes them per the Fig. 5 state diagram) and enqueues their nodes
// into the episode's priority queue.
func (a *appSim) abortMigrations() {
	for node, m := range a.migrations {
		m.aborted = true
		delete(a.migrations, node)
		a.res.AbortedMigrations++
		a.trace(trace.MigrationAborted, node, "superseded by p-ckpt")
		if a.cl.Node(node).State == cluster.Migrating {
			a.cl.MarkVulnerable(node, m.ev.FailTime)
		}
		if a.episode != nil {
			a.episode.q.Push(m.ev.FailTime, m.ev)
		}
	}
}

// pckptEpisode runs one coordinated prioritized checkpoint: phase 1
// serves vulnerable nodes serially by lead-time priority with uncontended
// PFS access; phase 2 commits the remaining nodes at aggregate bandwidth.
// The application is blocked throughout (healthy nodes wait). A failure
// during the episode abandons the remainder.
func (a *appSim) pckptEpisode(p *sim.Proc, first failure.Event) {
	a.res.ProactiveCkpts++
	a.trace(trace.EpisodeStart, first.Node, "")
	epBegin := a.env.Now()
	ep := &episodeState{startProgress: a.progress}
	a.episode = ep
	defer func() { a.episode = nil }()
	ep.q.Push(first.FailTime, first)
	a.abortMigrations()
	for ep.q.Len() > 0 && !ep.abandoned {
		_, ev := ep.q.Pop()
		if !a.blockedWait(p, a.singleWrite, &a.res.Overheads.Checkpoint) {
			break
		}
		ep.committed++
		a.met.commitLat.Observe(a.env.Now() - epBegin)
		a.trace(trace.VulnerableCommit, ev.Node, "")
		a.cl.RecordPFSCheckpoint(ev.Node, ep.startProgress)
		if a.cl.Node(ev.Node).State == cluster.Vulnerable {
			a.cl.MarkHealthy(ev.Node)
		}
		if ev.Kind == failure.KindPrediction && a.env.Now() <= ev.FailTime {
			// The vulnerable node's state reached the PFS before its
			// failure: the failure is mitigated.
			a.mitigatedAt[ev.ID] = ep.startProgress
			a.met.leadConsumed.Observe(a.env.Now() - (ev.FailTime - ev.Lead))
			a.met.leadMargin.Observe(ev.FailTime - a.env.Now())
		}
	}
	if ep.abandoned {
		a.met.episodesAbandoned.Inc()
		return
	}
	// Phase 2: pfs-commit broadcast; healthy nodes write together.
	healthy := a.nodes - ep.committed
	if healthy > 0 {
		tr := a.io.PFSWriteTransfer(healthy, a.perNode)
		if !a.blockedWait(p, tr.Seconds, &a.res.Overheads.Checkpoint) {
			a.met.episodesAbandoned.Inc()
			return
		}
		a.met.pfsGBs.Observe(tr.GBs)
	}
	a.commitFullPFS(ep.startProgress)
	a.rescheduled = true
	a.met.episodeDur.Observe(a.env.Now() - epBegin)
	if a.cfg.Trace != nil {
		a.trace(trace.EpisodeEnd, -1, fmt.Sprintf("blocked=%.1fs committed=%d", a.env.Now()-epBegin, ep.committed))
	}
}

// safeguard runs M1's just-in-time checkpoint: every node writes to the
// PFS synchronously, racing the predicted failure.
func (a *appSim) safeguard(p *sim.Proc) {
	if a.safeguarding {
		return // the in-flight safeguard covers this prediction too
	}
	a.safeguarding = true
	defer func() { a.safeguarding = false }()
	a.res.ProactiveCkpts++
	a.trace(trace.SafeguardStart, -1, "")
	began := a.env.Now()
	startProgress := a.progress
	if !a.blockedWait(p, a.fullWrite, &a.res.Overheads.Checkpoint) {
		return // the failure won the race (or rolled us back)
	}
	a.commitFullPFS(startProgress)
	a.rescheduled = true
	a.trace(trace.SafeguardEnd, -1, "")
	now := a.env.Now()
	a.met.safeguardDur.Observe(now - began)
	if a.fullWrite > 0 {
		a.met.pfsGBs.Observe(float64(a.nodes) * a.perNode / a.fullWrite)
	}
	for id, pi := range a.predicted {
		if pi.failAt >= now {
			// The safeguard committed everyone's state before this
			// pending failure: mitigated.
			a.mitigatedAt[id] = startProgress
			a.met.leadConsumed.Observe(now - (pi.failAt - pi.lead))
			a.met.leadMargin.Observe(pi.failAt - now)
		}
	}
}

// commitFullPFS records a full-application checkpoint at progress q as
// resident on the PFS.
func (a *appSim) commitFullPFS(q float64) {
	if q > a.pfsProgress {
		a.pfsProgress = q
		a.cl.RecordPFSCheckpointAll(q)
	}
}

// onFailure handles a failure striking node ev.Node: classify it
// (mitigated by a proactive checkpoint, or unhandled), roll progress
// back, perform recovery, replace the node.
func (a *appSim) onFailure(p *sim.Proc, ev failure.Event) {
	a.res.Failures++
	if ev.Lead > 0 {
		a.res.Predicted++
	}
	delete(a.predicted, ev.ID)
	if m := a.migrations[ev.Node]; m != nil {
		// The node died mid-migration (only possible for a second,
		// unpredicted failure, or an under-lead race): the migration is
		// void.
		m.aborted = true
		delete(a.migrations, ev.Node)
		a.res.AbortedMigrations++
	}
	if a.episode != nil {
		a.episode.abandoned = true
	}
	a.failEpoch++
	a.cl.Fail(ev.Node)

	mitQ, mitigated := a.mitigatedAt[ev.ID]
	if mitigated {
		delete(a.mitigatedAt, ev.ID)
		a.res.Mitigated++
	}
	// Best restart point: the proactive commit that mitigated this
	// failure, or the newest consistent periodic checkpoint — whichever
	// is fresher.
	q := a.cl.RecoverableProgress(ev.Node)
	recovery := a.recoveryBB
	fullPFSRestore := false
	if mitigated && mitQ >= q {
		q = mitQ
		// Recovering from a proactive checkpoint pulls every node's
		// state from the PFS (Sec. II), which is what makes recovery
		// visible in P1's overhead breakdown.
		recovery = a.recoveryPFS
		fullPFSRestore = true
	}
	if q < 0 {
		q = 0 // no checkpoint yet: restart from the beginning
	}
	loss := 0.0
	if a.progress > q {
		loss = a.progress - q
		a.res.Recompute += loss
		a.progress = q
	}
	a.met.recomputeLoss.Observe(loss)
	if fullPFSRestore && recovery > 0 {
		a.met.pfsGBs.Observe(float64(a.nodes) * a.perNode / recovery)
	}
	if a.cfg.Trace != nil {
		outcome := "unhandled"
		if mitigated {
			outcome = "mitigated"
		}
		a.trace(trace.Failure, ev.Node, fmt.Sprintf("%s loss=%.0fs", outcome, loss))
	}
	if err := a.cl.Replace(ev.Node); err != nil {
		panic(fmt.Sprintf("crmodel: %v", err))
	}
	// Recovery: restart as many times as failures force us to.
	began := a.env.Now()
	for !a.blockedWait(p, recovery, &a.res.Overheads.Recovery) {
	}
	a.met.recoveryDur.Observe(a.env.Now() - began)
	a.trace(trace.RecoveryDone, ev.Node, "")
}

// inject is the injector process: it delivers the event stream to the
// application, skipping failures avoided by completed migrations.
func (a *appSim) inject(p *sim.Proc) {
	for {
		ev := a.stream.Next()
		if !a.app.Alive() {
			return
		}
		if dt := ev.Time - a.env.Now(); dt > 0 {
			if err := p.Wait(dt); err != nil {
				panic(fmt.Sprintf("crmodel: injector interrupted: %v", err))
			}
		}
		if !a.app.Alive() {
			return
		}
		switch ev.Kind {
		case failure.KindFailure:
			if a.avoided[ev.ID] {
				delete(a.avoided, ev.ID)
				continue // live migration emptied the node in time
			}
			a.est.Observe()
		default:
			if !a.cfg.Model.usesPrediction() {
				continue // model B ignores the predictor entirely
			}
		}
		a.pending = append(a.pending, ev)
		a.app.Interrupt("failure-stream")
	}
}
