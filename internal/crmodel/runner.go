package crmodel

import (
	"runtime"
	"sync"

	"pckpt/internal/stats"
)

// SimulateN runs n independent simulations of cfg with seeds derived from
// baseSeed and aggregates the results. Runs execute in parallel across
// worker goroutines (each run is an isolated DES with its own RNG
// substream, so runs share nothing); results are accumulated in seed
// order, keeping the aggregate deterministic regardless of scheduling.
func SimulateN(cfg Config, n int, baseSeed uint64) *stats.Agg {
	return SimulateNWorkers(cfg, n, baseSeed, runtime.GOMAXPROCS(0))
}

// SimulateNWorkers is SimulateN with an explicit worker count (tests use
// 1 for reproducible profiling, benchmarks sweep it).
func SimulateNWorkers(cfg Config, n int, baseSeed uint64, workers int) *stats.Agg {
	if n <= 0 {
		return &stats.Agg{}
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	results := make([]stats.RunResult, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = Simulate(cfg, runSeed(baseSeed, i))
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	agg := &stats.Agg{}
	for _, r := range results {
		agg.Add(r)
	}
	return agg
}

// runSeed derives the seed for run index i from the experiment's base
// seed with a SplitMix64-style mix, so neighbouring runs are uncorrelated.
func runSeed(base uint64, i int) uint64 {
	x := base + 0x9e3779b97f4a7c15*uint64(i+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
