package crmodel

import (
	"fmt"
	"runtime"
	"sync"

	"pckpt/internal/metrics"
	"pckpt/internal/stats"
)

// simulateRun indirects Simulate so the panic-recovery test can plant a
// deliberately crashing run without corrupting a real configuration.
var simulateRun = Simulate

// runSafe executes one run with a recover guard: a panicking run — a bug,
// or the sim watchdog killing a livelock — is reported as a failure
// string instead of taking down the whole sweep.
func runSafe(cfg Config, seed uint64) (r stats.RunResult, failure string) {
	defer func() {
		if p := recover(); p != nil {
			failure = fmt.Sprint(p)
		}
	}()
	return simulateRun(cfg, seed), ""
}

// SimulateN runs n independent simulations of cfg with seeds derived from
// baseSeed and aggregates the results. Runs execute in parallel across
// worker goroutines (each run is an isolated DES with its own RNG
// substream, so runs share nothing); results are accumulated in seed
// order, keeping the aggregate deterministic regardless of scheduling.
func SimulateN(cfg Config, n int, baseSeed uint64) *stats.Agg {
	return SimulateNWorkers(cfg, n, baseSeed, runtime.GOMAXPROCS(0))
}

// SimulateNWorkers is SimulateN with an explicit worker count (tests use
// 1 for reproducible profiling, benchmarks sweep it).
func SimulateNWorkers(cfg Config, n int, baseSeed uint64, workers int) *stats.Agg {
	agg, _ := simulatePool(cfg, n, baseSeed, workers, false)
	return agg
}

// SimulateNMetered is SimulateNWorkers with the metrics subsystem on:
// every run records into its own private registry (no locks touch the
// simulation hot path), the per-run snapshots are merged in seed order,
// and the deterministic merged snapshot is returned alongside the
// aggregate. Any registry already set on cfg.Metrics is ignored — sharing
// one registry across concurrent runs would race.
func SimulateNMetered(cfg Config, n int, baseSeed uint64, workers int) (*stats.Agg, *metrics.Snapshot) {
	return simulatePool(cfg, n, baseSeed, workers, true)
}

// simulatePool is the shared worker-pool body. Runs execute concurrently;
// results and snapshots land in per-run slots, so the only coordination
// is the work channel and the final WaitGroup.
func simulatePool(cfg Config, n int, baseSeed uint64, workers int, meter bool) (*stats.Agg, *metrics.Snapshot) {
	if n <= 0 {
		return &stats.Agg{}, &metrics.Snapshot{}
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg.Metrics = nil // per-run registries only; a shared one would race
	results := make([]stats.RunResult, n)
	fails := make([]string, n)
	var snaps []*metrics.Snapshot
	if meter {
		snaps = make([]*metrics.Snapshot, n)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				runCfg := cfg
				if meter {
					runCfg.Metrics = metrics.New()
				}
				r, failed := runSafe(runCfg, RunSeed(baseSeed, i))
				if failed != "" {
					fails[i] = failed
					continue
				}
				results[i] = r
				if meter {
					snaps[i] = runCfg.Metrics.Snapshot(r.WallSeconds)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	agg := &stats.Agg{}
	desc := fmt.Sprintf("model=%s app=%s system=%s", cfg.Model, cfg.App.Name, cfg.System.Name)
	for i, r := range results {
		if fails[i] != "" {
			agg.AddFailed(stats.FailedRun{Seed: RunSeed(baseSeed, i), Config: desc, Err: fails[i]})
			continue
		}
		agg.Add(r)
	}
	merged := &metrics.Snapshot{}
	for _, s := range snaps {
		merged.Merge(s)
	}
	return agg, merged
}

// RunSeed derives the seed for run index i from the experiment's base
// seed with a SplitMix64-style mix, so neighbouring runs are uncorrelated.
// Exported so the tier-generic runner in internal/experiments draws the
// exact same seed sequence for either simulation tier.
func RunSeed(base uint64, i int) uint64 {
	x := base + 0x9e3779b97f4a7c15*uint64(i+1)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
