package crmodel

import (
	"strings"
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/platform"
	"pckpt/internal/trace"
)

func TestTraceRecordsRunTimeline(t *testing.T) {
	var buf trace.Buffer
	cfg := Config{Model: ModelP2, Config: platform.Config{App: failApp, System: failure.Titan}, Trace: &buf}
	r := Simulate(cfg, 2)
	if buf.Len() == 0 {
		t.Fatal("no trace events recorded")
	}
	counts := buf.Counts()
	if counts[trace.Complete] != 1 {
		t.Fatalf("Complete events = %d, want 1", counts[trace.Complete])
	}
	if counts[trace.BBWrite] != r.Checkpoints {
		t.Fatalf("BBWrite events %d != Checkpoints %d", counts[trace.BBWrite], r.Checkpoints)
	}
	if counts[trace.Failure] != r.Failures {
		t.Fatalf("Failure events %d != Failures %d", counts[trace.Failure], r.Failures)
	}
	if counts[trace.RecoveryDone] != r.Failures {
		t.Fatalf("RecoveryDone events %d != Failures %d", counts[trace.RecoveryDone], r.Failures)
	}
	if counts[trace.MigrationDone] != r.Migrations {
		t.Fatalf("MigrationDone events %d != Migrations %d", counts[trace.MigrationDone], r.Migrations)
	}
	// Timeline is time-ordered.
	events := buf.Events()
	for i := 1; i < len(events); i++ {
		if events[i].T < events[i-1].T {
			t.Fatalf("trace out of order at %d: %.2f after %.2f", i, events[i].T, events[i-1].T)
		}
	}
	// The last event is the completion.
	if events[len(events)-1].Kind != trace.Complete {
		t.Fatalf("last event is %v, want complete", events[len(events)-1].Kind)
	}
}

func TestTraceEpisodeBracketsCommits(t *testing.T) {
	var buf trace.Buffer
	cfg := Config{Model: ModelP1, Config: platform.Config{App: failApp, System: failure.Titan}, Trace: &buf}
	r := Simulate(cfg, 5)
	if r.ProactiveCkpts == 0 {
		t.Skip("seed produced no episodes")
	}
	starts := buf.Counts()[trace.EpisodeStart]
	if starts != r.ProactiveCkpts {
		t.Fatalf("EpisodeStart events %d != ProactiveCkpts %d", starts, r.ProactiveCkpts)
	}
	// Every vulnerable commit happens inside an episode.
	depth := 0
	for _, e := range buf.Events() {
		switch e.Kind {
		case trace.EpisodeStart:
			depth++
		case trace.EpisodeEnd:
			depth--
		case trace.VulnerableCommit:
			if depth <= 0 {
				t.Fatalf("vulnerable commit outside an episode at t=%.1f", e.T)
			}
		}
	}
}

func TestTraceRenderReadable(t *testing.T) {
	var buf trace.Buffer
	cfg := Config{Model: ModelP2, Config: platform.Config{App: failApp, System: failure.Titan}, Trace: &buf}
	Simulate(cfg, 2)
	out := buf.Render()
	for _, want := range []string{"cycle-start", "bb-write", "complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if g := buf.Gantt(60); !strings.Contains(g, "·") {
		t.Fatalf("gantt unexpectedly empty: %q", g)
	}
}

func TestNoTraceNoOverheadPath(t *testing.T) {
	// A nil recorder must not change results (tracing is observational).
	cfg := Config{Model: ModelP2, Config: platform.Config{App: failApp, System: failure.Titan}}
	plain := Simulate(cfg, 9)
	var buf trace.Buffer
	cfg.Trace = &buf
	traced := Simulate(cfg, 9)
	cfg.Trace = nil
	if plain != traced {
		t.Fatal("tracing changed simulation results")
	}
}
