package crmodel

import (
	"pckpt/internal/cluster"
	"pckpt/internal/metrics"
)

// runMetrics is one run's instrument handles, resolved once at Simulate
// start. With metering off every handle is nil and every call below is a
// no-op that allocates nothing (the same contract as trace.Recorder); an
// AllocsPerRun test guards that.
//
// Metric names are prefixed "sim.<model>." so aggregating across the
// five C/R models in one experiment keeps their distributions apart.
type runMetrics struct {
	// bbWrite is the wall span the application is blocked per completed
	// periodic BB checkpoint (interleaved proactive handling included).
	bbWrite *metrics.Histogram
	// episodeDur / commitLat cover p-ckpt episodes: total blocked span
	// per completed episode, and per-vulnerable-node commit latency from
	// episode start to the node's prioritized PFS commit; episodeWidth is
	// the vulnerable+migrating population each episode opens against.
	episodeDur   *metrics.Histogram
	commitLat    *metrics.Histogram
	episodeWidth *metrics.Histogram
	// safeguardDur is the blocked span per completed M1 safeguard.
	safeguardDur *metrics.Histogram
	// recoveryDur is the restart latency per failure (all retries until a
	// recovery completes); recomputeLoss is the progress rolled back.
	recoveryDur   *metrics.Histogram
	recomputeLoss *metrics.Histogram
	// pfsGBs is the effective aggregate PFS bandwidth drawn per
	// collective transfer (phase-2 commits, safeguards, PFS recoveries).
	pfsGBs *metrics.Histogram
	// leadConsumed / leadMargin split each mitigated prediction's lead
	// time into the part spent reaching safety and the part left over.
	leadConsumed *metrics.Histogram
	leadMargin   *metrics.Histogram
	// drainDepth tracks in-flight BB→PFS drains over sim time; vulnNodes
	// tracks the vulnerable+migrating population.
	drainDepth *metrics.Gauge
	vulnNodes  *metrics.Gauge
	// bbAborted counts periodic checkpoints voided by failures;
	// episodesAbandoned counts p-ckpt episodes cut short the same way.
	bbAborted         *metrics.Counter
	episodesAbandoned *metrics.Counter
}

// newRunMetrics resolves the handle set against r (all nil when r is nil).
func newRunMetrics(r *metrics.Registry, m Model) runMetrics {
	if r == nil {
		return runMetrics{}
	}
	p := "sim." + m.String() + "."
	return runMetrics{
		bbWrite:           r.Histogram(p + "bb_write_seconds"),
		episodeDur:        r.Histogram(p + "episode_seconds"),
		commitLat:         r.Histogram(p + "episode_commit_latency_seconds"),
		episodeWidth:      r.Histogram(p + "episode_width_nodes"),
		safeguardDur:      r.Histogram(p + "safeguard_seconds"),
		recoveryDur:       r.Histogram(p + "recovery_seconds"),
		recomputeLoss:     r.Histogram(p + "recompute_loss_seconds"),
		pfsGBs:            r.Histogram(p + "pfs_effective_gbps"),
		leadConsumed:      r.Histogram(p + "lead_consumed_seconds"),
		leadMargin:        r.Histogram(p + "lead_margin_seconds"),
		drainDepth:        r.Gauge(p + "drain_queue_depth"),
		vulnNodes:         r.Gauge(p + "vulnerable_nodes"),
		bbAborted:         r.Counter(p + "bb_writes_aborted"),
		episodesAbandoned: r.Counter(p + "episodes_abandoned"),
	}
}

// observeCluster installs a cluster observer maintaining the
// vulnerable-node population gauge. Only called when metering is on, so
// the unmetered hot path keeps a nil observer (one branch per
// transition, nothing more).
func (a *appSim) observeCluster() {
	vuln := 0
	counted := func(s cluster.State) bool {
		return s == cluster.Vulnerable || s == cluster.Migrating
	}
	a.cl.SetObserver(func(id int, from, to cluster.State) {
		if counted(from) {
			vuln--
		}
		if counted(to) {
			vuln++
		}
		a.met.vulnNodes.Set(a.env.Now(), float64(vuln))
	})
}
