// Package crmodel implements the five Checkpoint/Restart models the paper
// evaluates, at application granularity (one simulated process per
// application, the granularity of the paper's SimPy study):
//
//	B  — periodic BB checkpointing with asynchronous PFS drain, no
//	     failure prediction (the base model all reductions are
//	     measured against);
//	M1 — B + failure prediction + safeguard checkpointing (Bouguerra et
//	     al.): on prediction, all nodes synchronously checkpoint to the
//	     PFS, hoping to finish before the failure;
//	M2 — B + failure prediction + live migration (Behera et al.): with
//	     lead ≥ θ the vulnerable process migrates to a spare and the
//	     failure is avoided entirely;
//	P1 — B + failure prediction + p-ckpt: the coordinated prioritized
//	     checkpoint protocol (this paper's contribution);
//	P2 — hybrid p-ckpt: LM preferred, p-ckpt fallback with LM abort
//	     (this paper's headline model).
//
// A simulation run executes the application's compute/checkpoint cycle on
// the discrete-event engine, injects the failure/prediction stream, and
// accounts overheads per the paper's definitions (checkpoint /
// recomputation / recovery). Every run is deterministic given its seed.
package crmodel

import (
	"fmt"

	"pckpt/internal/failure"
	"pckpt/internal/iomodel"
	"pckpt/internal/lm"
	"pckpt/internal/metrics"
	"pckpt/internal/trace"
	"pckpt/internal/workload"
)

// Model selects a C/R policy.
type Model uint8

const (
	// ModelB is the base model: periodic checkpointing only.
	ModelB Model = iota
	// ModelM1 adds safeguard checkpointing on prediction.
	ModelM1
	// ModelM2 adds live migration on prediction.
	ModelM2
	// ModelP1 adds coordinated prioritized checkpointing (p-ckpt).
	ModelP1
	// ModelP2 is the hybrid: LM preferred, p-ckpt fallback.
	ModelP2
)

// Models lists all five in presentation order.
func Models() []Model { return []Model{ModelB, ModelM1, ModelM2, ModelP1, ModelP2} }

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelB:
		return "B"
	case ModelM1:
		return "M1"
	case ModelM2:
		return "M2"
	case ModelP1:
		return "P1"
	case ModelP2:
		return "P2"
	default:
		return fmt.Sprintf("Model(%d)", uint8(m))
	}
}

// ModelByName parses a model name ("B", "M1", ...).
func ModelByName(name string) (Model, error) {
	for _, m := range Models() {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("crmodel: unknown model %q", name)
}

// usesPrediction reports whether the model reacts to predictions.
func (m Model) usesPrediction() bool { return m != ModelB }

// usesLM reports whether the model can live-migrate.
func (m Model) usesLM() bool { return m == ModelM2 || m == ModelP2 }

// usesPckpt reports whether the model can run the p-ckpt protocol.
func (m Model) usesPckpt() bool { return m == ModelP1 || m == ModelP2 }

// usesSafeguard reports whether the model takes safeguard checkpoints.
func (m Model) usesSafeguard() bool { return m == ModelM1 }

// Config parameterises one simulation.
type Config struct {
	// Model is the C/R policy to simulate.
	Model Model
	// App is the application under test (Table I entry or custom).
	App workload.App
	// System supplies the failure distribution (Table III entry).
	System failure.System
	// IO prices every transfer; nil selects the default Summit model.
	IO *iomodel.Model
	// LM is the migration model; the zero value selects lm.Default().
	LM lm.Config
	// Leads is the lead-time model; nil selects the default mixture.
	Leads *failure.LeadTimeModel
	// LeadScale stretches lead times (1.0 if zero) — the variability
	// axis of Figs. 4 and 7.
	LeadScale float64
	// FNRate and FPRate configure the predictor. NOTE: the zero value
	// selects the defaults (0.125 / 0.18); to simulate a perfect
	// predictor set PerfectPredictor.
	FNRate, FPRate float64
	// PerfectPredictor forces FN = FP = 0.
	PerfectPredictor bool
	// OCIRefreshSeconds is how often the optimal checkpoint interval is
	// re-derived from the observed failure rate; zero selects hourly.
	OCIRefreshSeconds float64
	// AccuracyAwareSigma enables the extension the paper's Observation 9
	// proposes as future work: include the predictor's actual accuracy in
	// Eq. (2)'s σ, so the LM-assisted models stop overestimating their
	// coverage when the false-negative rate climbs. Off by default to
	// match the published models.
	AccuracyAwareSigma bool
	// Trace, when non-nil, receives the run's timeline events (see
	// internal/trace). Leave nil for production sweeps: tracing a long
	// run records one event per checkpoint cycle.
	Trace trace.Recorder
	// Metrics, when non-nil, receives the run's simulation-time metrics
	// (see internal/metrics): checkpoint block times, episode latencies,
	// drain queue depth, effective PFS bandwidth, lead-time consumption.
	// Like Trace, nil costs nothing on the hot path. A Registry is
	// single-run state — never share one across concurrent Simulate
	// calls; SimulateNMetered gives every run its own and merges the
	// snapshots.
	Metrics *metrics.Registry
}

// withDefaults returns a copy with zero fields defaulted.
func (c Config) withDefaults() Config {
	if c.IO == nil {
		c.IO = iomodel.New(iomodel.DefaultSummit())
	}
	if c.LM == (lm.Config{}) {
		c.LM = lm.Default()
	}
	if c.Leads == nil {
		c.Leads = failure.DefaultLeadTimes()
	}
	if c.LeadScale == 0 {
		c.LeadScale = 1
	}
	if c.PerfectPredictor {
		c.FNRate, c.FPRate = 0, 0
	} else {
		if c.FNRate == 0 {
			c.FNRate = failure.DefaultFNRate
		}
		if c.FPRate == 0 {
			c.FPRate = failure.DefaultFPRate
		}
	}
	if c.OCIRefreshSeconds == 0 {
		c.OCIRefreshSeconds = 3600
	}
	return c
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	c = c.withDefaults()
	if err := c.App.Validate(); err != nil {
		return err
	}
	if err := c.System.Validate(); err != nil {
		return err
	}
	if err := c.LM.Validate(); err != nil {
		return err
	}
	switch {
	case c.Model > ModelP2:
		return fmt.Errorf("crmodel: invalid model %d", c.Model)
	case c.LeadScale <= 0:
		return fmt.Errorf("crmodel: non-positive lead scale")
	case c.FNRate < 0 || c.FNRate > 1:
		return fmt.Errorf("crmodel: FN rate outside [0, 1]")
	case c.FPRate < 0 || c.FPRate >= 1:
		return fmt.Errorf("crmodel: FP rate outside [0, 1)")
	case c.OCIRefreshSeconds < 0:
		return fmt.Errorf("crmodel: negative OCI refresh period")
	}
	return nil
}

// Theta returns the live-migration lead-time threshold for this
// configuration's application.
func (c Config) Theta() float64 {
	c = c.withDefaults()
	return c.LM.Theta(c.App.PerNodeGB())
}

// Sigma returns the σ of Eq. (2) for this configuration: the fraction of
// failures avoidable by LM given the (scaled) lead-time distribution and
// the predictor's *baseline* recall. Models without LM use σ = 0.
//
// Deliberately, σ uses the baseline false-negative rate rather than the
// configured one: the paper's Eq. (2) does not include the prediction
// accuracy factor (its Observation 9 calls adding it future work), which
// is exactly why the LM-assisted models overestimate their coverage and
// degrade faster as the false-negative rate climbs.
func (c Config) Sigma() float64 {
	c = c.withDefaults()
	if !c.Model.usesLM() {
		return 0
	}
	leads := c.Leads
	if c.LeadScale != 1 {
		leads = leads.Scaled(c.LeadScale)
	}
	fn := failure.DefaultFNRate
	if c.AccuracyAwareSigma {
		fn = c.FNRate
	}
	return leads.Sigma(c.Theta(), fn)
}
