// Package crmodel implements the five Checkpoint/Restart models the paper
// evaluates, at application granularity (one simulated process per
// application, the granularity of the paper's SimPy study):
//
//	B  — periodic BB checkpointing with asynchronous PFS drain, no
//	     failure prediction (the base model all reductions are
//	     measured against);
//	M1 — B + failure prediction + safeguard checkpointing (Bouguerra et
//	     al.): on prediction, all nodes synchronously checkpoint to the
//	     PFS, hoping to finish before the failure;
//	M2 — B + failure prediction + live migration (Behera et al.): with
//	     lead ≥ θ the vulnerable process migrates to a spare and the
//	     failure is avoided entirely;
//	P1 — B + failure prediction + p-ckpt: the coordinated prioritized
//	     checkpoint protocol (this paper's contribution);
//	P2 — hybrid p-ckpt: LM preferred, p-ckpt fallback with LM abort
//	     (this paper's headline model).
//
// The model catalogue and per-model strategies live in internal/policy;
// the platform quantities in internal/platform. This package supplies the
// application-granularity execution of both: a simulation run executes
// the application's compute/checkpoint cycle on the discrete-event
// engine, injects the failure/prediction stream, and accounts overheads
// per the paper's definitions (checkpoint / recomputation / recovery).
// Every run is deterministic given its seed.
package crmodel

import (
	"fmt"

	"pckpt/internal/metrics"
	"pckpt/internal/platform"
	"pckpt/internal/policy"
	"pckpt/internal/trace"
)

// Model selects a C/R policy. It is the policy catalogue's ID type; the
// constants below are the catalogue entries under their historical names.
type Model = policy.ID

const (
	// ModelB is the base model: periodic checkpointing only.
	ModelB Model = policy.B
	// ModelM1 adds safeguard checkpointing on prediction.
	ModelM1 Model = policy.M1
	// ModelM2 adds live migration on prediction.
	ModelM2 Model = policy.M2
	// ModelP1 adds coordinated prioritized checkpointing (p-ckpt).
	ModelP1 Model = policy.P1
	// ModelP2 is the hybrid: LM preferred, p-ckpt fallback.
	ModelP2 Model = policy.P2
)

// Models lists all five in presentation order.
func Models() []Model { return policy.All() }

// ModelByName parses a model name ("B", "M1", ...).
func ModelByName(name string) (Model, error) { return policy.ByName(name) }

// Config parameterises one simulation: the model under test, the shared
// platform configuration, and this tier's observers.
type Config struct {
	// Model is the C/R policy to simulate.
	Model Model
	// Config is the tier-independent platform: application, failure
	// system, I/O pricing, migration model, predictor. Its fields are
	// promoted (cfg.App, cfg.System, ...).
	platform.Config
	// Trace, when non-nil, receives the run's timeline events (see
	// internal/trace). Leave nil for production sweeps: tracing a long
	// run records one event per checkpoint cycle.
	Trace trace.Recorder
	// Metrics, when non-nil, receives the run's simulation-time metrics
	// (see internal/metrics): checkpoint block times, episode latencies,
	// drain queue depth, effective PFS bandwidth, lead-time consumption.
	// Like Trace, nil costs nothing on the hot path. A Registry is
	// single-run state — never share one across concurrent Simulate
	// calls; SimulateNMetered gives every run its own and merges the
	// snapshots.
	Metrics *metrics.Registry
}

// withDefaults returns a copy with zero platform fields defaulted.
func (c Config) withDefaults() Config {
	c.Config = c.Config.WithDefaults()
	return c
}

// Validate reports a configuration error, or nil.
func (c Config) Validate() error {
	if !c.Model.Valid() {
		return fmt.Errorf("crmodel: invalid model %d", uint8(c.Model))
	}
	return c.Config.Validate()
}

// Sigma returns the σ of Eq. (2) for this configuration: the fraction of
// failures avoidable by LM given the (scaled) lead-time distribution and
// the predictor's *baseline* recall (see platform.Config.SigmaLM for why
// the baseline). Models without LM use σ = 0.
func (c Config) Sigma() float64 {
	if !c.Model.UsesLM() {
		return 0
	}
	return c.Config.SigmaLM()
}
