package crmodel

import (
	"math"
	"testing"

	"pckpt/internal/failure"
	"pckpt/internal/iomodel"
	"pckpt/internal/platform"
	"pckpt/internal/workload"
)

// quietSystem has a job MTBF of ≈4000 h for a 16-node job: rare enough
// that a 10 h run sees no failure (with the fixed seeds used below), yet
// frequent enough that the OCI stays well inside the runtime and the
// periodic checkpoint machinery runs.
var quietSystem = failure.System{Name: "quiet", Shape: 1, ScaleHours: 4000, Nodes: 16}

// stormSystem fails a job every ≈2000 s — frequent enough that proactive
// actions overlap and the rare protocol paths (LM abort) get exercised.
var stormSystem = failure.System{Name: "storm", Shape: 0.7, ScaleHours: 0.4, Nodes: 64}

// smallApp is a fast-to-simulate synthetic application.
var smallApp = workload.App{Name: "tiny", Nodes: 16, TotalCkptGB: 160, ComputeHours: 10}

// failApp is big and long enough on Titan to see several failures per run.
var failApp = workload.App{Name: "faily", Nodes: 2000, TotalCkptGB: 2000, ComputeHours: 200}

func TestSimulateDeterministic(t *testing.T) {
	cfg := Config{Model: ModelP2, Config: platform.Config{App: failApp, System: failure.Titan}}
	a := Simulate(cfg, 12345)
	b := Simulate(cfg, 12345)
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	c := Simulate(cfg, 54321)
	if a == c {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestFailureFreeRunHasOnlyCheckpointOverhead(t *testing.T) {
	cfg := Config{Model: ModelB, Config: platform.Config{App: smallApp, System: quietSystem}}
	r := Simulate(cfg, 1)
	if r.Failures != 0 || r.Recompute != 0 || r.Recovery != 0 {
		t.Fatalf("quiet system produced failure work: %+v", r)
	}
	if r.Checkpoints == 0 || r.Overheads.Checkpoint <= 0 {
		t.Fatal("no periodic checkpoints in a long run")
	}
	// Wall time = compute + checkpoint overhead exactly.
	want := smallApp.ComputeSeconds() + r.Overheads.Checkpoint
	if math.Abs(r.WallSeconds-want) > 1e-6 {
		t.Fatalf("wall %f != compute+ckpt %f", r.WallSeconds, want)
	}
	// Checkpoint overhead = count × BB write time.
	io := iomodel.New(iomodel.DefaultSummit())
	tBB := io.BBWriteTime(smallApp.PerNodeGB())
	if got := r.Overheads.Checkpoint / float64(r.Checkpoints); math.Abs(got-tBB) > 1e-9 {
		t.Fatalf("per-checkpoint overhead %.3f, want %.3f", got, tBB)
	}
}

func TestModelBIgnoresPredictions(t *testing.T) {
	cfg := Config{Model: ModelB, Config: platform.Config{App: smallApp, System: failure.Titan}}
	r := Simulate(cfg, 7)
	if r.ProactiveCkpts != 0 || r.Migrations != 0 || r.Avoided != 0 || r.Mitigated != 0 {
		t.Fatalf("base model took proactive actions: %+v", r)
	}
}

func TestP1MitigatesWithPerfectPredictor(t *testing.T) {
	// Tiny footprint → p-ckpt latency ≪ every lead; perfect predictor →
	// every failure predicted. All failures must be mitigated.
	app := workload.App{Name: "micro", Nodes: 8, TotalCkptGB: 0.8, ComputeHours: 2000}
	cfg := Config{Model: ModelP1, Config: platform.Config{App: app, System: failure.Titan, PerfectPredictor: true}}
	var failures, mitigated int
	for seed := uint64(0); seed < 10; seed++ {
		r := Simulate(cfg, seed)
		failures += r.Failures
		mitigated += r.Mitigated
	}
	if failures == 0 {
		t.Fatal("no failures generated; test is vacuous")
	}
	if frac := float64(mitigated) / float64(failures); frac < 0.97 {
		t.Fatalf("perfect-predictor P1 mitigated only %.2f of failures", frac)
	}
}

func TestM2AvoidsWithPerfectPredictor(t *testing.T) {
	app := workload.App{Name: "micro", Nodes: 8, TotalCkptGB: 0.8, ComputeHours: 2000}
	cfg := Config{Model: ModelM2, Config: platform.Config{App: app, System: failure.Titan, PerfectPredictor: true}}
	var struck, avoided int
	for seed := uint64(0); seed < 10; seed++ {
		r := Simulate(cfg, seed)
		struck += r.Failures
		avoided += r.Avoided
	}
	if avoided == 0 {
		t.Fatal("no avoidance under a perfect predictor")
	}
	if frac := float64(avoided) / float64(struck+avoided); frac < 0.97 {
		t.Fatalf("perfect-predictor M2 avoided only %.2f of failures", frac)
	}
}

func TestRecomputeAccountedOnFailure(t *testing.T) {
	cfg := Config{Model: ModelB, Config: platform.Config{App: failApp, System: failure.Titan}}
	sawLoss := false
	for seed := uint64(0); seed < 20 && !sawLoss; seed++ {
		r := Simulate(cfg, seed)
		if r.Failures > 0 {
			if r.Recompute <= 0 {
				t.Fatalf("seed %d: %d failures but zero recompute", seed, r.Failures)
			}
			if r.Recovery <= 0 {
				t.Fatalf("seed %d: %d failures but zero recovery", seed, r.Failures)
			}
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Fatal("no failing run found; widen the seed range")
	}
}

func TestWallTimeExceedsCompute(t *testing.T) {
	for _, m := range Models() {
		cfg := Config{Model: m, Config: platform.Config{App: smallApp, System: failure.Titan}}
		r := Simulate(cfg, 3)
		if r.WallSeconds < smallApp.ComputeSeconds() {
			t.Errorf("%s: wall %.0f below compute %.0f", m, r.WallSeconds, smallApp.ComputeSeconds())
		}
	}
}

func TestP2UsesBothMechanisms(t *testing.T) {
	// CHIMERA's θ≈41 s sits mid-distribution, so P2 must exercise both
	// LM (long leads) and p-ckpt (short leads).
	app := testApp(t, "CHIMERA")
	cfg := Config{Model: ModelP2, Config: platform.Config{App: app, System: failure.Titan}}
	var avoided, mitigated int
	for seed := uint64(0); seed < 30; seed++ {
		r := Simulate(cfg, seed)
		avoided += r.Avoided
		mitigated += r.Mitigated
	}
	if avoided == 0 || mitigated == 0 {
		t.Fatalf("hybrid did not use both mechanisms: avoided=%d mitigated=%d", avoided, mitigated)
	}
}

func TestP1NeverMigrates(t *testing.T) {
	cfg := Config{Model: ModelP1, Config: platform.Config{App: testApp(t, "CHIMERA"), System: failure.Titan}}
	for seed := uint64(0); seed < 5; seed++ {
		r := Simulate(cfg, seed)
		if r.Migrations != 0 || r.Avoided != 0 {
			t.Fatalf("P1 migrated: %+v", r)
		}
	}
}

func TestM1NeverMigratesAndP2Aborts(t *testing.T) {
	cfgM1 := Config{Model: ModelM1, Config: platform.Config{App: testApp(t, "CHIMERA"), System: failure.Titan}}
	if r := Simulate(cfgM1, 11); r.Migrations != 0 {
		t.Fatalf("M1 migrated: %+v", r)
	}
	// Under a failure storm, migrations overlap short-lead predictions
	// often enough that the LM-abort path must fire.
	stormApp := workload.App{Name: "stormy", Nodes: 64, TotalCkptGB: 64 * 200, ComputeHours: 4}
	cfgP2 := Config{Model: ModelP2, Config: platform.Config{App: stormApp, System: stormSystem}}
	aborted := 0
	for seed := uint64(0); seed < 20; seed++ {
		aborted += Simulate(cfgP2, seed).AbortedMigrations
	}
	if aborted == 0 {
		t.Fatal("no migration was ever aborted by p-ckpt under a failure storm")
	}
}

func TestOverheadReductionOrderingCHIMERA(t *testing.T) {
	// The paper's headline ordering on the largest application:
	// P2 best, P1 better than M2, M1 indistinguishable from B.
	app := testApp(t, "CHIMERA")
	const runs = 300
	totals := map[Model]float64{}
	for _, m := range Models() {
		agg := SimulateN(Config{Model: m, Config: platform.Config{App: app, System: failure.Titan}}, runs, 99)
		totals[m] = agg.MeanOverheads().Total()
	}
	if !(totals[ModelP2] < totals[ModelP1] && totals[ModelP1] < totals[ModelM2] && totals[ModelM2] < totals[ModelM1]) {
		t.Fatalf("ordering violated: B=%.0f M1=%.0f M2=%.0f P1=%.0f P2=%.0f",
			totals[ModelB], totals[ModelM1], totals[ModelM2], totals[ModelP1], totals[ModelP2])
	}
	if red := 100 * (totals[ModelB] - totals[ModelM1]) / totals[ModelB]; math.Abs(red) > 10 {
		t.Fatalf("M1 moved CHIMERA overhead by %.1f%%; the paper finds safeguard useless for large apps", red)
	}
	// P2's total reduction must land in the paper's neighbourhood.
	if red := 100 * (totals[ModelB] - totals[ModelP2]) / totals[ModelB]; red < 35 || red > 70 {
		t.Fatalf("P2 reduction %.1f%% outside the plausible band [35, 70]", red)
	}
}

func TestSimulateNMatchesSequential(t *testing.T) {
	cfg := Config{Model: ModelP2, Config: platform.Config{App: smallApp, System: failure.Titan}}
	par := SimulateNWorkers(cfg, 16, 9, 8)
	seq := SimulateNWorkers(cfg, 16, 9, 1)
	if par.N() != 16 || seq.N() != 16 {
		t.Fatalf("run counts wrong: %d / %d", par.N(), seq.N())
	}
	for i := range par.Runs() {
		if par.Runs()[i] != seq.Runs()[i] {
			t.Fatalf("run %d differs between parallel and sequential execution", i)
		}
	}
}

func TestSimulateNZeroRuns(t *testing.T) {
	if agg := SimulateN(Config{}, 0, 1); agg.N() != 0 {
		t.Fatal("zero runs must return an empty aggregate")
	}
}

func TestFTRatiosMatchPaperTable(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check needs many runs")
	}
	// Spot-check the Table II / Table IV anchors at the reference lead
	// time (0 % change) with generous tolerances.
	checks := []struct {
		app    string
		model  Model
		lo, hi float64
	}{
		{"CHIMERA", ModelM1, 0.0, 0.03},  // paper 0.006
		{"CHIMERA", ModelM2, 0.38, 0.56}, // paper 0.47
		{"CHIMERA", ModelP1, 0.62, 0.80}, // paper 0.70
		{"XGC", ModelM2, 0.58, 0.76},     // paper 0.66
		{"XGC", ModelP1, 0.76, 0.92},     // paper 0.84
		{"POP", ModelP2, 0.76, 0.95},     // paper 0.85
	}
	for _, c := range checks {
		app := testApp(t, c.app)
		agg := SimulateN(Config{Model: c.model, Config: platform.Config{App: app, System: failure.Titan}}, 150, 4242)
		if ft := agg.MeanFTRatio(); ft < c.lo || ft > c.hi {
			t.Errorf("%s %s FT = %.3f, want in [%.2f, %.2f]", c.app, c.model, ft, c.lo, c.hi)
		}
	}
}
