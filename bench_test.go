// Package repro benchmarks every table and figure of the paper plus the
// performance-critical substrates. Each BenchmarkFig*/BenchmarkTable*
// regenerates its experiment end to end (with a reduced run count per
// iteration — the experiment definitions themselves are run-count
// parametric); the reported values land in benchmark output, and the
// experiment tests in internal/experiments assert the paper's
// qualitative claims on the same code paths.
//
// Regenerate the full-size artefacts with:
//
//	go run ./cmd/experiments -run all -runs 1000
package repro

import (
	"fmt"
	"testing"

	"pckpt/internal/crmodel"
	"pckpt/internal/deshlog"
	"pckpt/internal/experiments"
	"pckpt/internal/failure"
	"pckpt/internal/iomodel"
	"pckpt/internal/lm"
	"pckpt/internal/nodesim"
	"pckpt/internal/pckpt"
	"pckpt/internal/platform"
	"pckpt/internal/rng"
	"pckpt/internal/sim"
	"pckpt/internal/workload"
)

// benchParams keeps per-iteration cost manageable; the experiment
// definitions accept any run count.
var benchParams = experiments.Params{Runs: 20, Seed: 42}

func benchExperiment(b *testing.B, id string, p experiments.Params) {
	b.Helper()
	d, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var text string
	for i := 0; i < b.N; i++ {
		p.Seed = 42 + uint64(i) // vary work across iterations
		text = d.Run(p).Text
	}
	if len(text) == 0 {
		b.Fatal("experiment produced no output")
	}
}

// --- one benchmark per table and figure -------------------------------

func BenchmarkTable1Workloads(b *testing.B) { benchExperiment(b, "table1", benchParams) }
func BenchmarkTable3Weibull(b *testing.B)   { benchExperiment(b, "table3", benchParams) }
func BenchmarkFig2aLeadTimeMining(b *testing.B) {
	benchExperiment(b, "fig2a", experiments.Params{Runs: 10, Seed: 42})
}
func BenchmarkFig2bSingleNodeIO(b *testing.B)  { benchExperiment(b, "fig2b", benchParams) }
func BenchmarkFig2cScalingMatrix(b *testing.B) { benchExperiment(b, "fig2c", benchParams) }
func BenchmarkFig4LeadTimeVariabilityM1M2(b *testing.B) {
	benchExperiment(b, "fig4", experiments.Params{Runs: 10, Seed: 42, Apps: []string{"XGC", "POP"}})
}
func BenchmarkTable2FTRatioM1M2(b *testing.B) {
	benchExperiment(b, "table2", experiments.Params{Runs: 10, Seed: 42, Apps: []string{"XGC", "POP"}})
}
func BenchmarkFig6aOverheadTitan(b *testing.B) {
	benchExperiment(b, "fig6a", experiments.Params{Runs: 10, Seed: 42, Apps: []string{"CHIMERA", "XGC", "POP"}})
}
func BenchmarkFig6bOverheadSystem18(b *testing.B) {
	benchExperiment(b, "fig6b", experiments.Params{Runs: 10, Seed: 42, Apps: []string{"CHIMERA", "XGC", "POP"}})
}
func BenchmarkFig6OverheadSystem8(b *testing.B) {
	benchExperiment(b, "fig6sys8", experiments.Params{Runs: 10, Seed: 42, Apps: []string{"XGC", "POP"}})
}
func BenchmarkFig6cLMTransferSweep(b *testing.B) {
	benchExperiment(b, "fig6c", experiments.Params{Runs: 10, Seed: 42, Apps: []string{"XGC", "POP"}})
}
func BenchmarkFig7LeadTimeVariabilityP1P2(b *testing.B) {
	benchExperiment(b, "fig7", experiments.Params{Runs: 10, Seed: 42, Apps: []string{"XGC", "POP"}})
}
func BenchmarkTable4FTRatioP1P2(b *testing.B) {
	benchExperiment(b, "table4", experiments.Params{Runs: 10, Seed: 42, Apps: []string{"XGC", "POP"}})
}
func BenchmarkFig8LMvsPckptShare(b *testing.B) {
	benchExperiment(b, "fig8", experiments.Params{Runs: 10, Seed: 42, Apps: []string{"XGC", "POP"}})
}
func BenchmarkObs9FalseNegativeSweep(b *testing.B) {
	benchExperiment(b, "obs9", experiments.Params{Runs: 10, Seed: 42, Apps: []string{"XGC"}})
}
func BenchmarkAnalyticAlphaSigma(b *testing.B) { benchExperiment(b, "analytic", benchParams) }

// --- ablations: design choices called out in DESIGN.md -----------------

// BenchmarkAblationSingleRunPerModel times one simulation run of each C/R
// model on the largest application — the unit cost every experiment pays.
func BenchmarkAblationSingleRunPerModel(b *testing.B) {
	app, err := workload.ByName("CHIMERA")
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range crmodel.Models() {
		b.Run(m.String(), func(b *testing.B) {
			cfg := crmodel.Config{Model: m, Config: platform.Config{App: app, System: failure.Titan}}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				crmodel.Simulate(cfg, uint64(i))
			}
		})
	}
}

// BenchmarkAblationWorkerScaling measures the parallel runner's scaling
// across worker counts (the runs-in-parallel design decision).
func BenchmarkAblationWorkerScaling(b *testing.B) {
	app, err := workload.ByName("XGC")
	if err != nil {
		b.Fatal(err)
	}
	cfg := crmodel.Config{Model: crmodel.ModelP2, Config: platform.Config{App: app, System: failure.Titan}}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				crmodel.SimulateNWorkers(cfg, 32, uint64(i), workers)
			}
		})
	}
}

// BenchmarkAblationDrainConcurrency quantifies the asynchronous-drain
// concurrency choice: too few drainers stretch the vulnerable window
// (Fig. 1 case B) and inflate recomputation.
func BenchmarkAblationDrainConcurrency(b *testing.B) {
	app, err := workload.ByName("CHIMERA")
	if err != nil {
		b.Fatal(err)
	}
	for _, conc := range []int{16, 64, 512} {
		ioCfg := iomodel.DefaultSummit()
		ioCfg.DrainConcurrency = conc
		io := iomodel.New(ioCfg)
		b.Run(fmt.Sprintf("drainers=%d", conc), func(b *testing.B) {
			cfg := crmodel.Config{Model: crmodel.ModelB, Config: platform.Config{App: app, System: failure.Titan, IO: io}}
			var recompute float64
			for i := 0; i < b.N; i++ {
				recompute += crmodel.Simulate(cfg, uint64(i)).Recompute
			}
			b.ReportMetric(recompute/float64(b.N)/3600, "recompute-h/run")
		})
	}
}

// --- substrate micro-benchmarks ----------------------------------------

// BenchmarkSimEngine measures raw DES throughput: two processes handing
// the clock back and forth.
func BenchmarkSimEngine(b *testing.B) {
	b.ReportAllocs()
	env := sim.NewEnv()
	env.Spawn("ticker", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Wait(1)
		}
	})
	b.ResetTimer()
	env.RunAll()
}

// BenchmarkFailureStream measures event-stream generation.
func BenchmarkFailureStream(b *testing.B) {
	b.ReportAllocs()
	s := failure.NewStream(failure.Config{System: failure.Titan, JobNodes: 2272,
		FNRate: failure.DefaultFNRate, FPRate: failure.DefaultFPRate}, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}

// BenchmarkIOMatrixLookup measures the bandwidth interpolation on the hot
// path of every checkpoint pricing.
func BenchmarkIOMatrixLookup(b *testing.B) {
	b.ReportAllocs()
	io := iomodel.New(iomodel.DefaultSummit())
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += io.AggregateBandwidth(1+i%4096, float64(1+i%256))
	}
	_ = sink
}

// BenchmarkPckptEpisode measures a full node-level protocol episode with
// eight vulnerable nodes.
func BenchmarkPckptEpisode(b *testing.B) {
	cfg := pckpt.Config{
		Nodes:     64,
		PerNodeGB: 40,
		IO:        iomodel.New(iomodel.DefaultSummit()),
		LM:        lm.Default(),
		Hybrid:    true,
	}
	var preds []pckpt.Prediction
	for i := 0; i < 8; i++ {
		preds = append(preds, pckpt.Prediction{Node: i * 7, At: float64(i), Lead: float64(5 + i*13)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pckpt.Run(cfg, preds)
	}
}

// BenchmarkNodeGranularRun measures one node-granular hybrid run (48
// node processes, coordinator, priority lane) against the app-level
// equivalent in BenchmarkAblationSingleRunPerModel.
func BenchmarkNodeGranularRun(b *testing.B) {
	app := workload.App{Name: "bench", Nodes: 48, TotalCkptGB: 48 * 20, ComputeHours: 24}
	sys := failure.System{Name: "busy", Shape: 0.75, ScaleHours: 40, Nodes: 48}
	cfg := nodesim.Config{Policy: nodesim.PolicyHybrid, Config: platform.Config{App: app, System: sys}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nodesim.Simulate(cfg, uint64(i))
	}
}

// BenchmarkDeshMine measures chain mining over a synthetic log.
func BenchmarkDeshMine(b *testing.B) {
	entries, _ := deshlog.Generate(deshlog.GenConfig{Nodes: 512, Duration: 1e7, Failures: 2000, NoisePerChain: 10}, rng.New(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deshlog.Mine(entries)
	}
}
